// Fluent builders for constructing COMDES models programmatically.
//
// These are the ergonomic layer the examples and tests use; everything
// they produce is an ordinary meta::Model over the COMDES metamodel, so
// models can equally come from the text serialization.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "comdes/metamodel.hpp"
#include "meta/model.hpp"

namespace gmdf::comdes {

class ActorBuilder;
class SmBuilder;

/// Builds a System with signals and actors. Owns the model.
class SystemBuilder {
public:
    explicit SystemBuilder(std::string name);

    SystemBuilder(const SystemBuilder&) = delete;
    SystemBuilder& operator=(const SystemBuilder&) = delete;
    SystemBuilder(SystemBuilder&&) noexcept = default;
    SystemBuilder& operator=(SystemBuilder&&) noexcept = default;

    /// type: "bool_" | "int_" | "real_".
    meta::ObjectId add_signal(const std::string& name, const std::string& type = "real_",
                              double init = 0.0);

    /// Adds an actor running on `node` with the given period (deadline
    /// defaults to the period).
    ActorBuilder add_actor(const std::string& name, std::int64_t period_us,
                           std::int64_t deadline_us = 0, std::int64_t node = 0);

    [[nodiscard]] meta::Model& model() { return model_; }
    [[nodiscard]] const meta::Model& model() const { return model_; }
    [[nodiscard]] meta::ObjectId system_id() const { return system_; }

    /// Moves the finished model out of the builder.
    [[nodiscard]] meta::Model take() { return std::move(model_); }

private:
    meta::Model model_;
    meta::ObjectId system_;
};

/// Builds one actor's function-block network.
class ActorBuilder {
public:
    ActorBuilder(meta::Model& model, meta::ObjectId actor, meta::ObjectId network);

    /// Adds a BasicFB. `params` layout is kind-specific (see fblib.hpp);
    /// `expr` is only meaningful for kind "expression_".
    meta::ObjectId add_basic(const std::string& name, const std::string& kind,
                             std::initializer_list<double> params = {},
                             const std::string& expr = {});

    /// Adds a StateMachineFB with declared input/output pins; configure
    /// states and transitions through the returned SmBuilder.
    SmBuilder add_sm(const std::string& name, std::vector<std::string> inputs,
                     std::vector<std::string> outputs);

    /// Wires from_fb.from_pin -> to_fb.to_pin.
    void connect(meta::ObjectId from_fb, const std::string& from_pin, meta::ObjectId to_fb,
                 const std::string& to_pin);

    /// Latches `signal` into fb.pin at task release.
    void bind_input(meta::ObjectId signal, meta::ObjectId fb, const std::string& pin);

    /// Latches fb.pin into `signal` at the task deadline.
    void bind_output(meta::ObjectId fb, const std::string& pin, meta::ObjectId signal);

    [[nodiscard]] meta::ObjectId actor_id() const { return actor_; }
    [[nodiscard]] meta::ObjectId network_id() const { return network_; }

private:
    meta::Model* model_;
    meta::ObjectId actor_;
    meta::ObjectId network_;
};

/// Builds the states and transitions of one StateMachineFB.
class SmBuilder {
public:
    SmBuilder(meta::Model& model, meta::ObjectId sm);

    /// Adds a state; `entry_actions` are (output pin, expression) pairs
    /// executed on entry. The first added state becomes the initial state
    /// unless set_initial() overrides it.
    meta::ObjectId add_state(const std::string& name,
                             std::initializer_list<std::pair<std::string, std::string>>
                                 entry_actions = {});

    /// Adds a transition. `event` names a bool input pin ("" = none),
    /// `guard` is an expression over input pins ("" = always true).
    meta::ObjectId add_transition(meta::ObjectId from, meta::ObjectId to,
                                  const std::string& event = {}, const std::string& guard = {},
                                  std::initializer_list<std::pair<std::string, std::string>>
                                      actions = {},
                                  std::int64_t priority = 0);

    void set_initial(meta::ObjectId state);

    [[nodiscard]] meta::ObjectId sm_id() const { return sm_; }

private:
    meta::Model* model_;
    meta::ObjectId sm_;
    bool has_initial_ = false;
};

} // namespace gmdf::comdes
