#include "comdes/build.hpp"

namespace gmdf::comdes {

using meta::ObjectId;
using meta::Value;

SystemBuilder::SystemBuilder(std::string name) : model_(comdes_metamodel().mm) {
    auto& sys = model_.create(*comdes_metamodel().system);
    sys.set_attr("name", Value(std::move(name)));
    system_ = sys.id();
}

ObjectId SystemBuilder::add_signal(const std::string& name, const std::string& type,
                                   double init) {
    auto& sig = model_.create(*comdes_metamodel().signal);
    sig.set_attr("name", Value(name));
    sig.set_attr("type", Value(type));
    sig.set_attr("init", Value(init));
    model_.at(system_).add_ref("signals", sig.id());
    return sig.id();
}

ActorBuilder SystemBuilder::add_actor(const std::string& name, std::int64_t period_us,
                                      std::int64_t deadline_us, std::int64_t node) {
    const auto& c = comdes_metamodel();
    auto& actor = model_.create(*c.actor);
    actor.set_attr("name", Value(name));
    actor.set_attr("period_us", Value(period_us));
    actor.set_attr("deadline_us", Value(deadline_us));
    actor.set_attr("node", Value(node));
    auto& net = model_.create(*c.network);
    actor.set_ref("network", net.id());
    model_.at(system_).add_ref("actors", actor.id());
    return {model_, actor.id(), net.id()};
}

ActorBuilder::ActorBuilder(meta::Model& model, ObjectId actor, ObjectId network)
    : model_(&model), actor_(actor), network_(network) {}

ObjectId ActorBuilder::add_basic(const std::string& name, const std::string& kind,
                                 std::initializer_list<double> params,
                                 const std::string& expr) {
    const auto& c = comdes_metamodel();
    auto& fb = model_->create(*c.basic_fb);
    fb.set_attr("name", Value(name));
    fb.set_attr("kind", Value(kind));
    if (params.size() > 0) {
        Value::List l;
        for (double p : params) l.emplace_back(p);
        fb.set_attr("params", Value(std::move(l)));
    }
    if (!expr.empty()) fb.set_attr("expr", Value(expr));
    model_->at(network_).add_ref("blocks", fb.id());
    return fb.id();
}

SmBuilder ActorBuilder::add_sm(const std::string& name, std::vector<std::string> inputs,
                               std::vector<std::string> outputs) {
    const auto& c = comdes_metamodel();
    auto& fb = model_->create(*c.sm_fb);
    fb.set_attr("name", Value(name));
    Value::List ins, outs;
    for (auto& s : inputs) ins.emplace_back(std::move(s));
    for (auto& s : outputs) outs.emplace_back(std::move(s));
    fb.set_attr("inputs", Value(std::move(ins)));
    fb.set_attr("outputs", Value(std::move(outs)));
    model_->at(network_).add_ref("blocks", fb.id());
    return {*model_, fb.id()};
}

void ActorBuilder::connect(ObjectId from_fb, const std::string& from_pin, ObjectId to_fb,
                           const std::string& to_pin) {
    const auto& c = comdes_metamodel();
    auto& conn = model_->create(*c.connection);
    conn.set_ref("from", from_fb);
    conn.set_ref("to", to_fb);
    conn.set_attr("from_pin", Value(from_pin));
    conn.set_attr("to_pin", Value(to_pin));
    model_->at(network_).add_ref("connections", conn.id());
}

void ActorBuilder::bind_input(ObjectId signal, ObjectId fb, const std::string& pin) {
    const auto& c = comdes_metamodel();
    auto& b = model_->create(*c.actor_input);
    b.set_attr("fb", Value(model_->at(fb).name()));
    b.set_attr("pin", Value(pin));
    b.set_ref("signal", signal);
    model_->at(actor_).add_ref("inputs", b.id());
}

void ActorBuilder::bind_output(ObjectId fb, const std::string& pin, ObjectId signal) {
    const auto& c = comdes_metamodel();
    auto& b = model_->create(*c.actor_output);
    b.set_attr("fb", Value(model_->at(fb).name()));
    b.set_attr("pin", Value(pin));
    b.set_ref("signal", signal);
    model_->at(actor_).add_ref("outputs", b.id());
}

SmBuilder::SmBuilder(meta::Model& model, ObjectId sm) : model_(&model), sm_(sm) {}

ObjectId SmBuilder::add_state(
    const std::string& name,
    std::initializer_list<std::pair<std::string, std::string>> entry_actions) {
    const auto& c = comdes_metamodel();
    auto& s = model_->create(*c.state);
    s.set_attr("name", Value(name));
    for (const auto& [target, expr] : entry_actions) {
        auto& a = model_->create(*c.assignment);
        a.set_attr("target", Value(target));
        a.set_attr("expr", Value(expr));
        s.add_ref("entry_actions", a.id());
    }
    model_->at(sm_).add_ref("states", s.id());
    if (!has_initial_) {
        model_->at(sm_).set_ref("initial", s.id());
        has_initial_ = true;
    }
    return s.id();
}

ObjectId SmBuilder::add_transition(
    ObjectId from, ObjectId to, const std::string& event, const std::string& guard,
    std::initializer_list<std::pair<std::string, std::string>> actions,
    std::int64_t priority) {
    const auto& c = comdes_metamodel();
    auto& t = model_->create(*c.transition);
    t.set_ref("from", from);
    t.set_ref("to", to);
    if (!event.empty()) t.set_attr("event", Value(event));
    if (!guard.empty()) t.set_attr("guard", Value(guard));
    t.set_attr("priority", Value(priority));
    for (const auto& [target, expr] : actions) {
        auto& a = model_->create(*c.assignment);
        a.set_attr("target", Value(target));
        a.set_attr("expr", Value(expr));
        t.add_ref("actions", a.id());
    }
    model_->at(sm_).add_ref("transitions", t.id());
    return t.id();
}

void SmBuilder::set_initial(ObjectId state) {
    model_->at(sm_).set_ref("initial", state);
    has_initial_ = true;
}

} // namespace gmdf::comdes
