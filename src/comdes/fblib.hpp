// Prefabricated function-block library: pin metadata and executable kernels.
//
// COMDES configures actors from reusable components. Each BasicFB kind has
// a fixed pin interface and a kernel implementing its step semantics; the
// StateMachineFB kernel interprets a compiled transition table and reports
// state changes to an observer (the hook the model debugger attaches to).
//
// Pin values are doubles everywhere at runtime (booleans are 0.0 / 1.0,
// matching the generated C code); signal types are enforced at model level.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "meta/model.hpp"

namespace gmdf::comdes {

/// Literals of the BasicKind enum, in declaration order. Parameter layout
/// (the `params` list attribute) per kind:
///   const_       [value]
///   gain_        [k]
///   offset_      [b]
///   add_ sub_ mul_ div_ min_ max_   (no params; pins in1, in2)
///   abs_ not_    (no params; pin in)
///   and_ or_ xor_                  (no params; pins in1, in2)
///   gt_ ge_ lt_ le_               [threshold] (pin in; out is 0/1)
///   hysteresis_  [lo, hi]          (Schmitt trigger; out latches)
///   limit_       [lo, hi]
///   deadband_    [half_width]
///   integrator_  [k, y0]           (y += k * in * dt, reset to y0)
///   derivative_  [k]
///   lowpass_     [tau_s]           (first-order lag)
///   ratelimit_   [rate_per_s]
///   delay_       [n_samples]
///   counter_     [limit]           (pins inc, reset; counts rising edges)
///   sample_hold_ (pins in, gate)
///   pid_         [kp, ki, kd, out_lo, out_hi] (pins sp, pv)
///   expression_  (expr attribute; input pins = its free variables)
[[nodiscard]] std::vector<std::string> basic_kind_names();

/// Pin interface of a function block.
struct FBPins {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;

    [[nodiscard]] int input_index(std::string_view name) const;
    [[nodiscard]] int output_index(std::string_view name) const;
};

/// Pin interface for any FunctionBlock model object (BasicFB by kind table,
/// CompositeFB/Mode by port maps, ModalFB by union of modes + selector,
/// StateMachineFB by declared inputs/outputs plus the implicit "state"
/// output carrying the current state index).
/// Throws std::invalid_argument for malformed blocks.
[[nodiscard]] FBPins pins_of(const meta::Model& model, const meta::MObject& fb);

/// Observer for state-machine kernels; the debugger's event source.
class SmObserver {
public:
    virtual ~SmObserver() = default;
    virtual void on_state_enter(meta::ObjectId sm, meta::ObjectId state) = 0;
    virtual void on_transition(meta::ObjectId sm, meta::ObjectId transition) = 0;
};

/// Executable kernel of one function block instance. Kernels hold the
/// block's internal state (integrators, delay lines, current SM state).
class FBKernel {
public:
    virtual ~FBKernel() = default;

    /// Re-establishes the initial state.
    virtual void reset() = 0;

    /// One synchronous evaluation: reads `in`, writes `out`. `dt` is the
    /// actor period in seconds (clocked synchronous execution).
    virtual void step(std::span<const double> in, std::span<double> out, double dt) = 0;

    /// Estimated cost in target CPU cycles per step (drives the simulated
    /// CPU model; calibrated to small-MCU magnitudes).
    [[nodiscard]] virtual std::uint32_t cost_cycles() const = 0;

    /// Two-phase kernels (delay_) publish outputs from internal state
    /// before the scan and capture inputs after it, which is what makes
    /// feedback cycles through them well-defined (unit-delay semantics:
    /// out(k) = in(k-1)). step() remains equivalent to publish-then-
    /// capture for standalone use.
    [[nodiscard]] virtual bool is_two_phase() const { return false; }
    virtual void publish(std::span<double> out) { (void)out; }
    virtual void capture(std::span<const double> in) { (void)in; }

    /// Checkpoint support (gmdf::replay): appends the kernel's mutable
    /// state as doubles, bit-exact (integers and booleans widen
    /// losslessly into the double payload). Stateless kernels keep the
    /// no-op default.
    virtual void save_state(std::vector<double>& out) const { (void)out; }

    /// Restores what save_state wrote; returns the number of values
    /// consumed from the front of `in`.
    virtual std::size_t load_state(std::span<const double> in) {
        (void)in;
        return 0;
    }
};

/// Builds the kernel for a BasicFB model object; throws on unknown kind,
/// bad parameter count, or (for expression_) a malformed expression.
[[nodiscard]] std::unique_ptr<FBKernel> make_basic_kernel(const meta::MObject& fb);

/// Builds the kernel for a StateMachineFB. Guards/actions are compiled
/// once. The observer may be null (no reporting); it must outlive the
/// kernel. The kernel's input span order matches pins_of().inputs, output
/// span order matches pins_of().outputs (last output = state index).
[[nodiscard]] std::unique_ptr<FBKernel> make_sm_kernel(const meta::Model& model,
                                                       const meta::MObject& sm_fb,
                                                       SmObserver* observer);

} // namespace gmdf::comdes
