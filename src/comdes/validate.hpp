// COMDES domain validation (beyond metamodel conformance).
#pragma once

#include "meta/diagnostics.hpp"
#include "meta/model.hpp"

namespace gmdf::comdes {

/// Checks domain rules over a COMDES model:
///  - unique names for signals / actors / blocks within one network
///  - connections reference blocks of the same network and existing pins
///  - each input pin is driven by at most one connection or binding
///  - actor input/output bindings name existing blocks and pins
///  - deadline <= period, period > 0
///  - state machines: transition endpoints belong to the machine, events
///    name declared bool inputs, guards/actions parse, every state is
///    reachable from the initial state
///  - dataflow (excluding delay_ blocks, which break cycles) is acyclic
///  - expression blocks parse
/// Runs meta::validate first and appends its findings.
[[nodiscard]] meta::Diagnostics validate_comdes(const meta::Model& model);

} // namespace gmdf::comdes
