#include "comdes/metamodel.hpp"

#include "comdes/fblib.hpp"

namespace gmdf::comdes {

namespace {

void build(ComdesMeta& c) {
    auto& mm = c.mm;

    c.signal_type = &mm.add_enum("SignalType", {"bool_", "int_", "real_"});
    c.port_dir = &mm.add_enum("PortDir", {"in", "out"});
    c.basic_kind = &mm.add_enum("BasicKind", basic_kind_names());

    c.named = &mm.add_class("NamedElement", /*is_abstract=*/true);
    mm.add_attribute(*c.named, meta::attr_string("name", /*required=*/true));

    c.signal = &mm.add_class("Signal", false, c.named);
    mm.add_attribute(*c.signal,
                     meta::attr_enum("type", *c.signal_type, true, meta::Value("real_")));
    mm.add_attribute(*c.signal, meta::attr_real("init", false, meta::Value(0.0)));
    mm.add_attribute(*c.signal, meta::attr_string("unit"));

    c.function_block = &mm.add_class("FunctionBlock", true, c.named);

    c.connection = &mm.add_class("Connection");
    mm.add_attribute(*c.connection, meta::attr_string("from_pin", true));
    mm.add_attribute(*c.connection, meta::attr_string("to_pin", true));
    mm.add_reference(*c.connection, meta::ref_plain("from", *c.function_block, 1, 1));
    mm.add_reference(*c.connection, meta::ref_plain("to", *c.function_block, 1, 1));

    c.network = &mm.add_class("Network");
    mm.add_reference(*c.network, meta::ref_contain("blocks", *c.function_block));
    mm.add_reference(*c.network, meta::ref_contain("connections", *c.connection));

    c.basic_fb = &mm.add_class("BasicFB", false, c.function_block);
    mm.add_attribute(*c.basic_fb, meta::attr_enum("kind", *c.basic_kind, true));
    // Numeric parameters, meaning depends on the kind (gain, limits, PID
    // coefficients, ...). See fblib.hpp for the per-kind layout.
    mm.add_attribute(*c.basic_fb, {"params", meta::AttrType::ListReal, nullptr, false, {}});
    // Expression source for kind == expression_.
    mm.add_attribute(*c.basic_fb, meta::attr_string("expr"));

    c.port_map = &mm.add_class("PortMap");
    mm.add_attribute(*c.port_map, meta::attr_string("outer_pin", true));
    mm.add_attribute(*c.port_map, meta::attr_string("inner_fb", true));
    mm.add_attribute(*c.port_map, meta::attr_string("inner_pin", true));
    mm.add_attribute(*c.port_map, meta::attr_enum("direction", *c.port_dir, true));

    c.composite_fb = &mm.add_class("CompositeFB", false, c.function_block);
    mm.add_reference(*c.composite_fb, meta::ref_contain("network", *c.network, 1, 1));
    mm.add_reference(*c.composite_fb, meta::ref_contain("port_maps", *c.port_map));

    c.mode = &mm.add_class("Mode", false, c.named);
    mm.add_attribute(*c.mode, meta::attr_int("value", true));
    mm.add_reference(*c.mode, meta::ref_contain("network", *c.network, 1, 1));
    mm.add_reference(*c.mode, meta::ref_contain("port_maps", *c.port_map));

    c.modal_fb = &mm.add_class("ModalFB", false, c.function_block);
    mm.add_attribute(*c.modal_fb,
                     meta::attr_string("selector_pin", true, meta::Value("mode")));
    mm.add_reference(*c.modal_fb, meta::ref_contain("modes", *c.mode, 1, -1));

    c.assignment = &mm.add_class("Assignment");
    mm.add_attribute(*c.assignment, meta::attr_string("target", true));
    mm.add_attribute(*c.assignment, meta::attr_string("expr", true));

    c.state = &mm.add_class("State", false, c.named);
    mm.add_reference(*c.state, meta::ref_contain("entry_actions", *c.assignment));

    c.transition = &mm.add_class("Transition");
    mm.add_attribute(*c.transition, meta::attr_string("event"));
    mm.add_attribute(*c.transition, meta::attr_string("guard"));
    mm.add_attribute(*c.transition, meta::attr_int("priority", false, meta::Value(0)));
    mm.add_reference(*c.transition, meta::ref_plain("from", *c.state, 1, 1));
    mm.add_reference(*c.transition, meta::ref_plain("to", *c.state, 1, 1));
    mm.add_reference(*c.transition, meta::ref_contain("actions", *c.assignment));

    c.sm_fb = &mm.add_class("StateMachineFB", false, c.function_block);
    mm.add_attribute(*c.sm_fb, {"inputs", meta::AttrType::ListString, nullptr, false, {}});
    mm.add_attribute(*c.sm_fb, {"outputs", meta::AttrType::ListString, nullptr, false, {}});
    mm.add_reference(*c.sm_fb, meta::ref_contain("states", *c.state, 1, -1));
    mm.add_reference(*c.sm_fb, meta::ref_contain("transitions", *c.transition));
    mm.add_reference(*c.sm_fb, meta::ref_plain("initial", *c.state, 1, 1));

    c.actor_input = &mm.add_class("ActorInput");
    mm.add_attribute(*c.actor_input, meta::attr_string("fb", true));
    mm.add_attribute(*c.actor_input, meta::attr_string("pin", true));
    mm.add_reference(*c.actor_input, meta::ref_plain("signal", *c.signal, 1, 1));

    c.actor_output = &mm.add_class("ActorOutput");
    mm.add_attribute(*c.actor_output, meta::attr_string("fb", true));
    mm.add_attribute(*c.actor_output, meta::attr_string("pin", true));
    mm.add_reference(*c.actor_output, meta::ref_plain("signal", *c.signal, 1, 1));

    c.actor = &mm.add_class("Actor", false, c.named);
    mm.add_attribute(*c.actor, meta::attr_int("period_us", true));
    // deadline_us == 0 means "equals the period".
    mm.add_attribute(*c.actor, meta::attr_int("deadline_us", false, meta::Value(0)));
    mm.add_attribute(*c.actor, meta::attr_int("node", false, meta::Value(0)));
    mm.add_attribute(*c.actor, meta::attr_int("priority", false, meta::Value(0)));
    mm.add_reference(*c.actor, meta::ref_contain("network", *c.network, 1, 1));
    mm.add_reference(*c.actor, meta::ref_contain("inputs", *c.actor_input));
    mm.add_reference(*c.actor, meta::ref_contain("outputs", *c.actor_output));

    c.system = &mm.add_class("System", false, c.named);
    mm.add_reference(*c.system, meta::ref_contain("signals", *c.signal));
    mm.add_reference(*c.system, meta::ref_contain("actors", *c.actor));

}

struct BuiltComdesMeta : ComdesMeta {
    BuiltComdesMeta() { build(*this); }
};

} // namespace

const ComdesMeta& comdes_metamodel() {
    static const BuiltComdesMeta instance;
    return instance;
}

} // namespace gmdf::comdes
