// Unit tests for the expression language: lexer, parser, evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace ge = gmdf::expr;
using gmdf::meta::Value;

namespace {

Value run(std::string_view src, const std::map<std::string, Value>& vars = {}) {
    auto ast = ge::parse(src);
    return ge::eval(*ast, vars);
}

TEST(Lexer, TokenKinds) {
    auto toks = ge::lex("x + 1.5 >= (2, true) && !y");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, ge::TokKind::Ident);
    EXPECT_EQ(toks[0].text, "x");
    EXPECT_EQ(toks.back().kind, ge::TokKind::End);
}

TEST(Lexer, RejectsSingleEquals) {
    EXPECT_THROW(ge::lex("a = b"), ge::ExprError);
}

TEST(Lexer, RejectsUnknownChar) {
    EXPECT_THROW(ge::lex("a $ b"), ge::ExprError);
}

TEST(Lexer, MalformedExponent) {
    EXPECT_THROW(ge::lex("1e+"), ge::ExprError);
}

TEST(Lexer, WordOperators) {
    EXPECT_EQ(run("true and false").as_bool(), false);
    EXPECT_EQ(run("true or false").as_bool(), true);
    EXPECT_EQ(run("not false").as_bool(), true);
}

TEST(Parser, Precedence) {
    EXPECT_EQ(run("1 + 2 * 3").as_int(), 7);
    EXPECT_EQ(run("(1 + 2) * 3").as_int(), 9);
    EXPECT_EQ(run("2 + 3 < 4 + 4").as_bool(), true);
    EXPECT_EQ(run("1 < 2 && 3 < 4").as_bool(), true);
    EXPECT_EQ(run("false || true && false").as_bool(), false); // && binds tighter
}

TEST(Parser, UnaryChains) {
    EXPECT_EQ(run("--5").as_int(), 5);
    EXPECT_EQ(run("!!true").as_bool(), true);
    EXPECT_EQ(run("-2 * -3").as_int(), 6);
}

TEST(Parser, Conditional) {
    EXPECT_EQ(run("1 < 2 ? 10 : 20").as_int(), 10);
    EXPECT_EQ(run("1 > 2 ? 10 : 20").as_int(), 20);
    // Right associative.
    EXPECT_EQ(run("false ? 1 : true ? 2 : 3").as_int(), 2);
}

TEST(Parser, TrailingJunkRejected) {
    EXPECT_THROW(ge::parse("1 + 2 3"), ge::ExprError);
    EXPECT_THROW(ge::parse(""), ge::ExprError);
    EXPECT_THROW(ge::parse("(1"), ge::ExprError);
    EXPECT_THROW(ge::parse("f(1,"), ge::ExprError);
}

TEST(Parser, FreeVariables) {
    auto ast = ge::parse("x + y * min(z, x) - 2");
    auto vars = ge::free_variables(*ast);
    EXPECT_EQ(vars, (std::vector<std::string>{"x", "y", "z"}));
}

TEST(Parser, ToStringRoundTrip) {
    auto ast = ge::parse("a + b * 2 >= 4 ? min(a, 3) : -b");
    // Printed form must re-parse to an equivalent expression.
    auto printed = ge::to_string(*ast);
    auto ast2 = ge::parse(printed);
    std::map<std::string, Value> env{{"a", Value(5)}, {"b", Value(2)}};
    EXPECT_EQ(ge::eval(*ast, env), ge::eval(*ast2, env));
}

TEST(Eval, IntArithmeticStaysInt) {
    EXPECT_TRUE(run("7 / 2").is_int());
    EXPECT_EQ(run("7 / 2").as_int(), 3);
    EXPECT_EQ(run("7 % 3").as_int(), 1);
}

TEST(Eval, RealPromotion) {
    EXPECT_TRUE(run("7 / 2.0").is_real());
    EXPECT_DOUBLE_EQ(run("7 / 2.0").as_real(), 3.5);
    EXPECT_DOUBLE_EQ(run("1 + 0.5").as_real(), 1.5);
}

TEST(Eval, DivisionByZero) {
    EXPECT_THROW(run("1 / 0"), ge::EvalError);
    EXPECT_THROW(run("1 % 0"), ge::EvalError);
    // Real division by zero follows IEEE.
    EXPECT_TRUE(std::isinf(run("1.0 / 0.0").as_real()));
}

TEST(Eval, Variables) {
    std::map<std::string, Value> env{{"speed", Value(42.0)}, {"on", Value(true)}};
    EXPECT_DOUBLE_EQ(run("speed * 2", env).as_real(), 84.0);
    EXPECT_EQ(run("on && speed > 40", env).as_bool(), true);
}

TEST(Eval, UnknownVariableThrows) {
    EXPECT_THROW(run("missing + 1"), ge::EvalError);
}

TEST(Eval, ShortCircuitSkipsRhs) {
    // RHS would throw (unknown variable) if evaluated.
    EXPECT_EQ(run("false && missing").as_bool(), false);
    EXPECT_EQ(run("true || missing").as_bool(), true);
}

TEST(Eval, Builtins) {
    EXPECT_EQ(run("min(3, 5)").as_int(), 3);
    EXPECT_EQ(run("max(3, 5)").as_int(), 5);
    EXPECT_DOUBLE_EQ(run("min(3.5, 2)").as_real(), 2.0);
    EXPECT_EQ(run("abs(-4)").as_int(), 4);
    EXPECT_DOUBLE_EQ(run("abs(-4.5)").as_real(), 4.5);
    EXPECT_EQ(run("clamp(10, 0, 5)").as_int(), 5);
    EXPECT_DOUBLE_EQ(run("floor(2.7)").as_real(), 2.0);
    EXPECT_DOUBLE_EQ(run("ceil(2.2)").as_real(), 3.0);
    EXPECT_DOUBLE_EQ(run("sqrt(9)").as_real(), 3.0);
    EXPECT_DOUBLE_EQ(run("pow(2, 10)").as_real(), 1024.0);
    EXPECT_EQ(run("sign(-3.2)").as_int(), -1);
    EXPECT_EQ(run("sign(0)").as_int(), 0);
}

TEST(Eval, BuiltinArityChecked) {
    EXPECT_THROW(run("min(1)"), ge::EvalError);
    EXPECT_THROW(run("abs()"), ge::EvalError);
    EXPECT_THROW(run("nosuchfn(1)"), ge::EvalError);
}

TEST(Eval, BoolEquality) {
    EXPECT_EQ(run("true == true").as_bool(), true);
    EXPECT_EQ(run("true != false").as_bool(), true);
}

TEST(Eval, EvalBoolCoercion) {
    auto ast = ge::parse("3");
    EXPECT_TRUE(ge::eval_bool(*ast, [](std::string_view) { return Value(); }));
    auto zero = ge::parse("0");
    EXPECT_FALSE(ge::eval_bool(*zero, [](std::string_view) { return Value(); }));
}

TEST(Eval, IsBuiltin) {
    EXPECT_TRUE(ge::is_builtin("min"));
    EXPECT_TRUE(ge::is_builtin("pow"));
    EXPECT_FALSE(ge::is_builtin("zzz"));
}

// Property sweep: for random-ish integer environments, guard expressions
// evaluate consistently with a hand-computed oracle.
struct GuardCase {
    const char* src;
    std::int64_t x;
    std::int64_t y;
    bool expected;
};

class GuardSweep : public ::testing::TestWithParam<GuardCase> {};

TEST_P(GuardSweep, MatchesOracle) {
    const auto& c = GetParam();
    std::map<std::string, Value> env{{"x", Value(c.x)}, {"y", Value(c.y)}};
    EXPECT_EQ(run(c.src, env).as_bool(), c.expected) << c.src;
}

INSTANTIATE_TEST_SUITE_P(
    Guards, GuardSweep,
    ::testing::Values(
        GuardCase{"x > y", 3, 2, true}, GuardCase{"x > y", 2, 3, false},
        GuardCase{"x % 2 == 0", 4, 0, true}, GuardCase{"x % 2 == 0", 5, 0, false},
        GuardCase{"x > 0 && y > 0", 1, 1, true}, GuardCase{"x > 0 && y > 0", 1, -1, false},
        GuardCase{"abs(x - y) <= 1", 5, 6, true}, GuardCase{"abs(x - y) <= 1", 5, 8, false},
        GuardCase{"min(x, y) == y", 9, 4, true}, GuardCase{"x * x + y * y < 25", 3, 3, true},
        GuardCase{"x * x + y * y < 25", 4, 3, false}));

} // namespace
