// Time-travel debugging tests: snapshot round-trips, checkpoint-ring
// accounting, rewind + re-execution byte-identity, step-back after a
// breakpoint, bisect fault localization, hub-routed rewind isolation,
// and the typed refusals (non-deterministic transports, out-of-range
// targets).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "hub/controller.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"
#include "replay/checkpoint.hpp"
#include "replay/snapshot.hpp"
#include "replay/timeline.hpp"

namespace gp = gmdf::proto;
namespace gr = gmdf::replay;
namespace rt = gmdf::rt;
using gmdf::core::EngineState;

namespace {

gp::Response exec(gp::Scenario& s, const std::string& line) {
    return s.controller().execute_line(line);
}

void expect_ok(gp::Scenario& s, const std::string& line) {
    auto resp = exec(s, line);
    EXPECT_TRUE(resp.ok()) << line << " -> " << resp.message;
}

} // namespace

// ---- snapshot layer ---------------------------------------------------------

// Capture / restore / re-capture yields bit-identical bytes, and the
// restored platform re-executes into a bit-identical future: the full
// deterministic state (signal replicas, RAM, DES queue incl. in-flight
// ops and re-armed periods, task stats, FB internals) round-trips.
TEST(Snapshot, RoundTripAndReExecutionAreBitIdentical) {
    auto s = gp::make_scenario("turntable");
    ASSERT_NE(s, nullptr);
    // 130 ms: the part stimulus fired, the at-position stimulus is still
    // an in-flight pending op, jobs and latches are mid-air.
    s->target.run_for(130 * rt::kMs);
    gr::Snapshot a = gr::capture_snapshot(s->target, *s->session);
    EXPECT_EQ(a.time, 130 * rt::kMs);
    EXPECT_GT(a.size_bytes(), 0u);

    s->target.run_for(100 * rt::kMs);
    gr::Snapshot b = gr::capture_snapshot(s->target, *s->session);

    gr::restore_snapshot(a, s->target, *s->session);
    EXPECT_EQ(s->target.sim().now(), 130 * rt::kMs);
    gr::Snapshot a2 = gr::capture_snapshot(s->target, *s->session);
    EXPECT_EQ(a.bytes, a2.bytes) << "restore + re-capture must be bit-identical";

    s->target.run_for(100 * rt::kMs);
    gr::Snapshot b2 = gr::capture_snapshot(s->target, *s->session);
    EXPECT_EQ(b.bytes, b2.bytes)
        << "re-execution from a restored snapshot must be bit-identical";
}

TEST(Snapshot, RestoreRejectsGarbage) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    s->target.run_for(50 * rt::kMs);
    gr::Snapshot snap = gr::capture_snapshot(s->target, *s->session);
    snap.bytes[0] ^= 0xFF; // break the magic
    EXPECT_THROW(gr::restore_snapshot(snap, s->target, *s->session),
                 gr::SnapshotError);
}

// Raw one-shot closures on the simulator (outside the target's pending
// op registry) cannot be restored — capture refuses loudly instead of
// producing a snapshot that would silently drop them.
TEST(Snapshot, RefusesUnrestorableOneShotEvents) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    s->target.run_for(10 * rt::kMs);
    s->target.sim().after(5 * rt::kMs, [] {});
    EXPECT_THROW((void)gr::capture_snapshot(s->target, *s->session),
                 gr::SnapshotError);
}

// ---- checkpoint ring --------------------------------------------------------

TEST(CheckpointStore, ByteBudgetEvictsOldestAndAccounts) {
    gr::CheckpointStore store;
    store.set_byte_limit(1000);
    auto make = [](rt::SimTime t, std::size_t bytes) {
        gr::Checkpoint cp;
        cp.snap.time = t;
        cp.snap.bytes.assign(bytes, 0xAB);
        return cp;
    };
    store.add(make(0, 400));
    store.add(make(100, 400));
    ASSERT_EQ(store.stats().count, 2u);
    EXPECT_EQ(store.stats().bytes, 800u);
    EXPECT_EQ(store.stats().evictions, 0u);

    store.add(make(200, 400)); // 1200 > 1000: oldest out
    EXPECT_EQ(store.stats().count, 2u);
    EXPECT_EQ(store.stats().bytes, 800u);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.stats().captures, 3u);
    EXPECT_EQ(store.earliest_time().value(), 100);

    // The newest checkpoint always survives, even over budget.
    store.add(make(300, 5000));
    EXPECT_EQ(store.stats().count, 1u);
    EXPECT_EQ(store.stats().bytes, 5000u);
    EXPECT_EQ(store.stats().evictions, 3u);

    EXPECT_EQ(store.nearest_at_or_before(299), nullptr);
    EXPECT_EQ(store.nearest_at_or_before(301)->snap.time, 300);
    store.drop_after(250);
    EXPECT_EQ(store.stats().count, 0u);
}

// ---- trace ring satellite ---------------------------------------------------

TEST(TraceRecorder, EvictionRecordsTheLostWindow) {
    gmdf::core::TraceRecorder trace;
    trace.set_capacity(3);
    for (int i = 1; i <= 5; ++i)
        trace.record({gmdf::link::Cmd::Hello, 0, 0, 0.0f}, i * rt::kMs);
    EXPECT_EQ(trace.dropped(), 2u);
    EXPECT_EQ(trace.dropped_through(), 2 * rt::kMs);
    EXPECT_EQ(trace.earliest_retained().value(), 3 * rt::kMs);
    trace.truncate_after(4 * rt::kMs);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.dropped(), 2u) << "truncation is not eviction";
}

// ---- rewind -----------------------------------------------------------------

// The acceptance criterion: rewind <t> then run re-produces the original
// forward transcript byte-identically (VCD over the whole run).
TEST(Rewind, ReExecutionReproducesTheForwardTranscript) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 100");
    expect_ok(*s, "run 1000");
    std::string vcd1 = s->session->vcd();
    std::size_t events1 = s->session->trace().size();
    ASSERT_GT(events1, 0u);

    auto resp = exec(*s, "rewind 400");
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_EQ(s->target.sim().now(), 400 * rt::kMs);
    EXPECT_LT(s->session->trace().size(), events1);

    expect_ok(*s, "run 600");
    EXPECT_EQ(s->target.sim().now(), 1000 * rt::kMs);
    EXPECT_EQ(s->session->trace().size(), events1);
    EXPECT_EQ(s->session->vcd(), vcd1)
        << "rewind + run must reproduce the original transcript";
}

// Rewinding to a time between checkpoints restores the nearest one and
// deterministically catches up, without double-reporting into the trace
// or divergence log.
TEST(Rewind, CatchUpDoesNotDoubleReport) {
    auto s = gp::make_scenario("turntable");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 100");
    expect_ok(*s, "run 400");
    std::string vcd1 = s->session->vcd();
    std::size_t events1 = s->session->trace().size();

    // 250 ms sits between the 200 and 300 ms checkpoints.
    auto resp = exec(*s, "rewind 250");
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_EQ(s->target.sim().now(), 250 * rt::kMs);
    for (const auto& ev : s->session->trace().events())
        EXPECT_LE(ev.t, 250 * rt::kMs);

    expect_ok(*s, "run 150");
    EXPECT_EQ(s->session->trace().size(), events1);
    EXPECT_EQ(s->session->vcd(), vcd1);
}

// Control actions issued after a checkpoint (breakpoint adds, resumes)
// are journaled and re-applied during catch-up, so a rewind across them
// reproduces the exact pause/resume shape of the original run.
TEST(Rewind, ReplaysJournaledControlActions) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 100");
    expect_ok(*s, "run 300");
    expect_ok(*s, "break add state on"); // added AFTER the 300 ms checkpoint
    expect_ok(*s, "run 700");            // hits just past 300 ms, stays paused
    ASSERT_EQ(s->session->engine().state(), EngineState::Paused);
    rt::SimTime hit_t = s->session->trace().events().back().t;
    expect_ok(*s, "resume");
    expect_ok(*s, "run 500");            // re-hits at the next 'on' entry
    ASSERT_EQ(s->session->engine().state(), EngineState::Paused);
    std::string vcd1 = s->session->vcd();

    // 320 ms is after the hit: catch-up must replay the breakpoint add
    // from the journal and re-pause the target at the same spot.
    auto resp = exec(*s, "rewind 320");
    ASSERT_TRUE(resp.ok()) << resp.message;
    ASSERT_GT(hit_t, 300 * rt::kMs);
    ASSERT_LT(hit_t, 320 * rt::kMs);
    EXPECT_EQ(s->session->engine().state(), EngineState::Paused)
        << "the replayed breakpoint must have re-paused the target";

    expect_ok(*s, "run 680");
    expect_ok(*s, "resume");
    expect_ok(*s, "run 500");
    EXPECT_EQ(s->session->vcd(), vcd1);
}

// A control op stamped exactly at the rewind target belongs to time t
// (trace events at t are kept, so the journal boundary must match):
// pausing at 100 ms and rewinding to 100 ms lands on a paused session.
TEST(Rewind, ControlsAtTheExactTargetInstantAreReplayed) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 50");
    expect_ok(*s, "run 100");
    expect_ok(*s, "pause"); // journaled at exactly 100 ms, after the checkpoint
    expect_ok(*s, "run 200");
    std::string vcd1 = s->session->vcd();

    auto resp = exec(*s, "rewind 100");
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_EQ(s->session->engine().state(), EngineState::Paused)
        << "the pause issued at the rewind instant must be replayed";

    expect_ok(*s, "run 200");
    EXPECT_EQ(s->session->vcd(), vcd1);
}

TEST(Rewind, OutOfRangeIsAStructuredErrorWithTheReachableWindow) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "run 300");

    // No checkpoints at all: typed refusal.
    auto none = exec(*s, "rewind 100");
    EXPECT_EQ(none.code, gp::ErrorCode::BadState);

    // A checkpoint at 300 ms makes [300, now] reachable; 100 ms is not.
    expect_ok(*s, "checkpoint now");
    expect_ok(*s, "run 100");
    auto early = exec(*s, "rewind 100");
    EXPECT_EQ(early.code, gp::ErrorCode::BadArgument);
    EXPECT_NE(early.message.find("reachable window"), std::string::npos)
        << early.message;
    EXPECT_NE(early.message.find(std::to_string(300 * rt::kMs)), std::string::npos)
        << "window should name the earliest checkpoint: " << early.message;

    // The future is out of range too.
    auto future = exec(*s, "rewind 9999");
    EXPECT_EQ(future.code, gp::ErrorCode::BadArgument);
}

// Passive (JTAG) transports hold host-side probe state the snapshot
// cannot carry; rewind and checkpointing are refused with typed errors.
TEST(Rewind, RefusedOnPassiveJtagTransport) {
    gmdf::comdes::SystemBuilder sys{"passive"};
    auto led = sys.add_signal("led", "bool_");
    auto actor = sys.add_actor("blinker", 100'000);
    auto sm = actor.add_sm("toggler", {"tick"}, {"out"});
    auto off = sm.add_state("off", {{"out", "0"}});
    auto on = sm.add_state("on", {{"out", "1"}});
    sm.add_transition(off, on, "tick");
    sm.add_transition(on, off, "tick");
    auto one = actor.add_basic("one", "const_", {1.0});
    actor.connect(one, "out", sm.sm_id(), "tick");
    actor.bind_output(sm.sm_id(), "out", led);

    rt::Target target;
    auto loaded = gmdf::codegen::load_system(
        target, sys.model(), gmdf::codegen::InstrumentOptions::passive());
    gmdf::core::DebugSession session(sys.model());
    session.attach(gmdf::core::make_passive_jtag_transport(target, loaded, sys.model(),
                                                           5 * rt::kMs));
    target.start();
    target.run_for(50 * rt::kMs);

    gr::Timeline timeline(target, session);
    std::string error;
    EXPECT_EQ(timeline.capture_now(&error), nullptr);
    EXPECT_NE(error.find("passive-jtag"), std::string::npos) << error;
    auto err = timeline.rewind_to(10 * rt::kMs);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, gr::NavError::Kind::NotDeterministic);
}

// ---- step-back --------------------------------------------------------------

// After a breakpoint pauses the session, step-back rewinds to just
// before the triggering event; running forward hits the same breakpoint
// at the same simulated time again.
TEST(StepBack, ReArmsTheSameBreakpoint) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 50");
    expect_ok(*s, "break add state on");
    expect_ok(*s, "run 1000");
    ASSERT_EQ(s->session->engine().state(), EngineState::Paused);
    ASSERT_GT(s->session->trace().size(), 0u);
    rt::SimTime hit_t = s->session->trace().events().back().t;
    (void)s->controller().drain_events();

    auto resp = exec(*s, "step-back 1");
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_EQ(s->target.sim().now(), hit_t - 1);
    EXPECT_NE(s->session->engine().state(), EngineState::Paused)
        << "before the hit the target had not been halted";

    expect_ok(*s, "run 1000");
    ASSERT_EQ(s->session->engine().state(), EngineState::Paused);
    EXPECT_EQ(s->session->trace().events().back().t, hit_t)
        << "the same breakpoint must re-fire at the same sim time";
    bool saw_hit = false;
    for (const auto& ev : s->controller().drain_events())
        if (ev.kind == gp::Event::Kind::BreakpointHit) saw_hit = true;
    EXPECT_TRUE(saw_hit);
}

// ---- bisect -----------------------------------------------------------------

// The lift_fault scenario generates code from a model with an injected
// wrong-transition-target fault while the debugger keeps the design:
// bisect must localize the exact step where behaviour left the model.
TEST(Bisect, LocalizesTheSeededFault) {
    auto s = gp::make_scenario("lift_fault");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint auto 50");
    expect_ok(*s, "run 600");
    const auto& divs = s->session->divergences();
    ASSERT_FALSE(divs.empty()) << "the injected fault must trip the checker";
    rt::SimTime now_before = s->target.sim().now();

    gr::BisectResult res = s->timeline->bisect();
    ASSERT_TRUE(res.error.empty()) << res.error;
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.t, divs.front().t)
        << "the first bad step is where the first divergence fired";
    EXPECT_EQ(res.reason, divs.front().message);
    EXPECT_GT(res.probes, 1u) << "bisect must actually probe the timeline";
    ASSERT_LT(res.step, s->session->trace().size());
    EXPECT_EQ(s->session->trace().events()[res.step].t, res.t);
    EXPECT_EQ(s->session->trace().events()[res.step].cmd.kind,
              gmdf::link::Cmd::StateEnter)
        << "the culprit is the state entry that tripped the checker, not a "
           "same-timestamp neighbour";

    // Bisect probes must leave the session exactly where it was.
    EXPECT_EQ(s->target.sim().now(), now_before);
    EXPECT_EQ(s->session->divergences().size(), divs.size());
}

TEST(Bisect, CleanTimelineReportsNoDivergence) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "checkpoint now");
    expect_ok(*s, "run 500");
    gr::BisectResult res = s->timeline->bisect();
    ASSERT_TRUE(res.error.empty()) << res.error;
    EXPECT_FALSE(res.found);
    EXPECT_GE(res.probes, 1u);
}

// ---- hub isolation ----------------------------------------------------------

// Rewinding one hosted session must not disturb another: sessions own
// independent targets and timelines; only the addressed one moves.
TEST(Hub, RoutedRewindIsIsolated) {
    gmdf::hub::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    ASSERT_TRUE(hub.execute_line("@a checkpoint auto 100").ok());
    ASSERT_TRUE(hub.execute_line("run 300").ok());

    auto& entries = hub.registry().entries();
    gp::Scenario& a = *entries[0]->scenario;
    gp::Scenario& b = *entries[1]->scenario;
    ASSERT_EQ(a.target.sim().now(), 300 * rt::kMs);
    ASSERT_EQ(b.target.sim().now(), 300 * rt::kMs);
    std::string b_vcd = b.session->vcd();
    std::size_t b_events = b.session->trace().size();

    auto resp = hub.execute_line("@a rewind 150");
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_EQ(a.target.sim().now(), 150 * rt::kMs);
    EXPECT_EQ(b.target.sim().now(), 300 * rt::kMs)
        << "rewinding a must not move b's clock";
    EXPECT_EQ(b.session->vcd(), b_vcd);
    EXPECT_EQ(b.session->trace().size(), b_events);

    // A hub-wide run advances both again, from their own clocks.
    ASSERT_TRUE(hub.execute_line("run 100").ok());
    EXPECT_EQ(a.target.sim().now(), 250 * rt::kMs);
    EXPECT_EQ(b.target.sim().now(), 400 * rt::kMs);
}

// ---- replay_frames reuse (satellite) ---------------------------------------

// The `replay` verb (DebugSession::replay_frames) now rides the shared
// replay::animate_trace; the re-animated final frame equals the live
// scene rendered at the same point.
TEST(Replay, FramesStillMatchLiveAnimation) {
    auto s = gp::make_scenario("blinker");
    ASSERT_NE(s, nullptr);
    expect_ok(*s, "run 500");
    auto frames = s->session->replay_frames(1);
    ASSERT_FALSE(frames.empty());
    EXPECT_EQ(frames.back(), s->session->render_ascii());
}

// ---- golden scenario --------------------------------------------------------

// The end-to-end time-travel workflow (checkpoint config, rewind,
// step-back, both bisect outcomes, hub routing) as a byte-stable
// transcript, the same fixture CI diffs against gmdf_dbg.
TEST(Golden, TimetravelScriptTranscriptIsByteStable) {
    gmdf::hub::HubController hub;
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/timetravel.gds");
    ASSERT_TRUE(script) << "missing examples/timetravel.gds";
    std::ostringstream out;
    auto result = gp::run_script(hub, script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/timetravel_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/timetravel_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());
}

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
