// Tests for the protocol layer: request/response codec (round-trips,
// quoting, malformed input -> structured errors), dispatcher registry,
// every registered verb end-to-end against a scripted session, the
// asynchronous event queue, the protocol counters, and the golden
// transcript of the scripted quickstart scenario.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "link/transport.hpp"
#include "proto/controller.hpp"
#include "proto/dispatcher.hpp"
#include "proto/message.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"

namespace gc = gmdf::comdes;
namespace gco = gmdf::core;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gp = gmdf::proto;
namespace rt = gmdf::rt;

namespace {

// ---- codec ------------------------------------------------------------------

TEST(Codec, ParsesVerbAndArgs) {
    auto r = gp::parse_request("break add state run");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.request->verb, "break");
    EXPECT_EQ(r.request->args,
              (std::vector<std::string>{"add", "state", "run"}));
}

TEST(Codec, QuotedArgumentsCarrySpaces) {
    auto r = gp::parse_request("break add signal \"speed > 40\" once");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.request->args,
              (std::vector<std::string>{"add", "signal", "speed > 40", "once"}));
}

TEST(Codec, EscapesInsideQuotes) {
    auto r = gp::parse_request(R"(say "he said \"hi\"" "a\\b" "line\nbreak" "tab\there")");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.request->args[0], "he said \"hi\"");
    EXPECT_EQ(r.request->args[1], "a\\b");
    EXPECT_EQ(r.request->args[2], "line\nbreak");
    EXPECT_EQ(r.request->args[3], "tab\there");
}

TEST(Codec, FormatParseRoundTrip) {
    gp::Request req{"echo", {"a b", "he said \"hi\"", "back\\slash", "nl\nhere", "", "plain"}};
    auto parsed = gp::parse_request(gp::format_request(req));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(*parsed.request, req);
}

TEST(Codec, MalformedInputIsStructuredError) {
    for (const char* line : {"", "   ", "query \"unterminated", "x \"bad \\q escape\"",
                             "x \"dangling\\", "x mid\"quote", "x \"post\"fix"}) {
        auto r = gp::parse_request(line);
        EXPECT_FALSE(r.ok()) << "'" << line << "' should not parse";
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(Codec, ResponseFormatting) {
    EXPECT_EQ(gp::format_response(gp::Response::make_ok({"one", "two"})),
              "ok\n| one\n| two\n");
    EXPECT_EQ(gp::format_response(gp::Response::make_ok()), "ok\n");
    EXPECT_EQ(gp::format_response(
                  gp::Response::make_error(gp::ErrorCode::NotFound, "no state 'x'")),
              "error not-found: no state 'x'\n");
}

TEST(Codec, EventFormatting) {
    EXPECT_EQ(gp::format_event({gp::Event::Kind::Divergence, 1500, "bad transition"}),
              "* divergence @1500ns bad transition\n");
    EXPECT_EQ(gp::format_event(
                  {gp::Event::Kind::StateChange, std::nullopt, "waiting -> animating"}),
              "* state-change waiting -> animating\n");
}

// ---- dispatcher -------------------------------------------------------------

TEST(Dispatcher, UnknownVerbAndExceptionSafety) {
    gp::Dispatcher d;
    d.add({"boom", "boom", "throws", [](const gp::Request&) -> gp::Response {
               throw std::runtime_error("kaput");
           }});
    auto unknown = d.dispatch({"nope", {}});
    EXPECT_EQ(unknown.code, gp::ErrorCode::UnknownVerb);
    auto thrown = d.dispatch({"boom", {}});
    EXPECT_EQ(thrown.code, gp::ErrorCode::Internal);
    EXPECT_NE(thrown.message.find("kaput"), std::string::npos);
}

TEST(Dispatcher, HelpListsEveryRegisteredRow) {
    gp::Dispatcher d;
    d.add({"a", "a <x>", "first", [](const gp::Request&) { return gp::Response::make_ok(); }});
    d.add({"a", "a <y>", "second form", nullptr}); // doc-only row
    d.add({"b", "b", "other", [](const gp::Request&) { return gp::Response::make_ok(); }});
    EXPECT_EQ(d.verbs(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(d.help_lines().size(), 3u);
    EXPECT_EQ(d.help_lines("a").size(), 2u);
    EXPECT_TRUE(d.dispatch({"a", {}}).ok());
}

// ---- end-to-end against a scripted session ---------------------------------

// Two-state machine + speed signal, driven by a ScriptedTransport; the
// run hook advances a fake clock and pumps the transport.
struct ScriptedSession {
    gc::SystemBuilder sys{"demo"};
    gm::ObjectId speed, sm_id, s_idle, s_run, t_go;
    std::unique_ptr<gco::DebugSession> session;
    gl::ScriptedTransport* transport = nullptr;
    rt::SimTime now = 0;

    ScriptedSession() {
        speed = sys.add_signal("speed", "real_");
        auto a = sys.add_actor("ctl", 10'000);
        auto smb = a.add_sm("machine", {"go"}, {"out"});
        s_idle = smb.add_state("idle", {{"out", "0"}});
        s_run = smb.add_state("run", {{"out", "1"}});
        t_go = smb.add_transition(s_idle, s_run, "go");
        smb.add_transition(s_run, s_idle, "", "!go");
        sm_id = smb.sm_id();
        auto gt = a.add_basic("gt", "gt_", {0.5});
        a.bind_input(speed, gt, "in");
        a.connect(gt, "out", sm_id, "go");
        EXPECT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));
        session = std::make_unique<gco::DebugSession>(sys.model());
        auto t = std::make_unique<gl::ScriptedTransport>();
        transport = t.get();
        session->attach(std::move(t));
        session->controller().set_run_hook([this](rt::SimTime d) {
            now += d;
            transport->poll(session->engine(), now);
        });
    }

    gp::Response exec(const std::string& line) {
        return session->controller().execute_line(line);
    }

    void push(gl::Cmd kind, std::uint32_t a, std::uint32_t b, float v, rt::SimTime at) {
        transport->push({kind, a, b, v}, at);
    }
};

TEST(Controller, InfoReportsSessionShape) {
    ScriptedSession s;
    auto r = s.exec("info");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.body[0], "model demo");
    EXPECT_EQ(r.body[3], "engine waiting");
    EXPECT_EQ(r.body[4], "transports scripted");
    EXPECT_EQ(r.body[6], "step-filter any");
}

TEST(Controller, RunPumpsTransportAndReportsState) {
    ScriptedSession s;
    s.push(gl::Cmd::StateEnter, static_cast<std::uint32_t>(s.sm_id.raw),
           static_cast<std::uint32_t>(s.s_idle.raw), 0, 5 * rt::kMs);
    auto r = s.exec("run 10");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.body[0], "ran 10 ms");
    EXPECT_EQ(r.body[1], "engine animating");
    auto q = s.exec("query state machine");
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q.body[0], "machine machine in idle");
}

TEST(Controller, RunRejectsJunkAndMissingHook) {
    ScriptedSession s;
    EXPECT_EQ(s.exec("run nope").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("run -5").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("run").code, gp::ErrorCode::BadArgument);
    gco::DebugSession bare(s.sys.model());
    EXPECT_EQ(bare.controller().execute_line("run 10").code, gp::ErrorCode::BadState);
}

TEST(Controller, PauseStepResumeLifecycle) {
    ScriptedSession s;
    EXPECT_EQ(s.exec("resume").code, gp::ErrorCode::BadState);
    EXPECT_EQ(s.exec("step").code, gp::ErrorCode::BadState);
    auto p = s.exec("pause");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.body[0], "engine paused");
    EXPECT_EQ(s.exec("pause").code, gp::ErrorCode::BadState);
    EXPECT_EQ(s.transport->pauses(), 1u);
    auto st = s.exec("step ctl");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.body[0], "stepping ctl");
    ASSERT_EQ(s.transport->steps().size(), 1u);
    EXPECT_EQ(s.transport->steps()[0].actor, "ctl");
    // The engine re-pauses at the next ingested command.
    s.push(gl::Cmd::TaskStart, 1, 0, 0, s.now + rt::kMs);
    ASSERT_TRUE(s.exec("run 2").ok());
    EXPECT_EQ(s.session->engine().state(), gco::EngineState::Paused);
    auto res = s.exec("resume");
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.body[0], "engine animating");
    EXPECT_EQ(s.transport->resumes(), 1u);
}

TEST(Controller, StepFilterSetAndClear) {
    ScriptedSession s;
    auto r = s.exec("step-filter ctl");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.body[0], "step-filter ctl");
    EXPECT_EQ(s.session->engine().step_filter().actor, "ctl");
    r = s.exec("step-filter");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.body[0], "step-filter any");
    EXPECT_TRUE(s.session->engine().step_filter().any());
}

TEST(Controller, BreakAddListRemove) {
    ScriptedSession s;
    auto add = s.exec("break add state run once");
    ASSERT_TRUE(add.ok());
    EXPECT_EQ(add.body[0], "breakpoint 1 state-enter run once");
    auto by_id = s.exec("break add transition #" + std::to_string(s.t_go.raw));
    ASSERT_TRUE(by_id.ok());
    auto sig = s.exec("break add signal \"speed > 40\"");
    ASSERT_TRUE(sig.ok());
    EXPECT_EQ(sig.body[0], "breakpoint 3 signal-predicate \"speed > 40\"");
    auto list = s.exec("break list");
    ASSERT_TRUE(list.ok());
    EXPECT_EQ(list.body.size(), 3u);
    ASSERT_TRUE(s.exec("break remove 2").ok());
    EXPECT_EQ(s.exec("break remove 2").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("break list").body.size(), 2u);
}

TEST(Controller, BreakRejectsBadInput) {
    ScriptedSession s;
    EXPECT_EQ(s.exec("break add state no_such_state").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("break add signal \"speed >\"").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("break add weird thing").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("break").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("break remove nan").code, gp::ErrorCode::BadArgument);
    // Integer arguments must be integers: no silent truncation.
    EXPECT_EQ(s.exec("break remove 1.9").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("break add state #1.5").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("replay 1.5").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("trace timing 32.5").code, gp::ErrorCode::BadArgument);
    // ...and out-of-range values must not alias existing handles.
    ASSERT_TRUE(s.exec("break add state run").ok()); // handle 1 exists
    EXPECT_EQ(s.exec("break remove 4294967297").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("break remove 18446744073709551617").code,
              gp::ErrorCode::BadArgument);
    EXPECT_EQ(s.exec("break list").body.size(), 1u); // breakpoint 1 untouched
    EXPECT_EQ(s.exec("run 1e300").code, gp::ErrorCode::BadArgument);
    // A state id that exists but is not a state.
    EXPECT_EQ(s.exec("break add state #" + std::to_string(s.speed.raw)).code,
              gp::ErrorCode::NotFound);
}

TEST(Controller, BreakpointFiresAndQueuesEvent) {
    ScriptedSession s;
    ASSERT_TRUE(s.exec("break add state run").ok());
    s.push(gl::Cmd::StateEnter, static_cast<std::uint32_t>(s.sm_id.raw),
           static_cast<std::uint32_t>(s.s_run.raw), 0, rt::kMs);
    ASSERT_TRUE(s.exec("run 2").ok());
    EXPECT_EQ(s.session->engine().state(), gco::EngineState::Paused);
    auto events = s.session->controller().drain_events();
    ASSERT_GE(events.size(), 2u); // state changes + breakpoint hit
    bool hit = false;
    for (const auto& ev : events)
        if (ev.kind == gp::Event::Kind::BreakpointHit) {
            hit = true;
            EXPECT_NE(ev.detail.find("handle=1"), std::string::npos);
            EXPECT_NE(ev.detail.find("state-enter run"), std::string::npos);
            ASSERT_TRUE(ev.t.has_value());
            EXPECT_EQ(*ev.t, rt::kMs);
        }
    EXPECT_TRUE(hit);
    EXPECT_FALSE(s.session->controller().has_events());
}

TEST(Controller, DivergenceQueuesEventAndQueryReportsIt) {
    ScriptedSession s;
    // TRANSITION naming a non-transition element diverges from the model.
    s.push(gl::Cmd::Transition, static_cast<std::uint32_t>(s.sm_id.raw),
           static_cast<std::uint32_t>(s.speed.raw), 0, rt::kMs);
    ASSERT_TRUE(s.exec("run 2").ok());
    auto q = s.exec("query divergences");
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q.body[0], "divergences 1");
    EXPECT_EQ(q.body.size(), 2u);
    bool diverged = false;
    for (const auto& ev : s.session->controller().drain_events())
        if (ev.kind == gp::Event::Kind::Divergence) diverged = true;
    EXPECT_TRUE(diverged);
}

TEST(Controller, QuerySignalAndState) {
    ScriptedSession s;
    auto unobserved = s.exec("query signal speed");
    ASSERT_TRUE(unobserved.ok());
    EXPECT_EQ(unobserved.body[0], "signal speed unobserved");
    s.push(gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(s.speed.raw), 0, 42.5f,
           rt::kMs);
    ASSERT_TRUE(s.exec("run 2").ok());
    EXPECT_EQ(s.exec("query signal speed").body[0], "signal speed = 42.5");
    EXPECT_EQ(s.exec("query signal bogus").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("query state bogus").code, gp::ErrorCode::NotFound);
    EXPECT_EQ(s.exec("query state machine").body[0], "machine machine unobserved");
    EXPECT_EQ(s.exec("query nothing").code, gp::ErrorCode::BadArgument);
}

TEST(Controller, StatsCountRequestsErrorsAndEvents) {
    ScriptedSession s;
    (void)s.exec("info");
    (void)s.exec("bogus-verb");
    (void)s.exec("\"unparsable");
    (void)s.exec("pause"); // queues a state-change event
    auto r = s.exec("query stats");
    ASSERT_TRUE(r.ok());
    // 5 requests so far including this one; 2 errors; >= 1 event.
    EXPECT_EQ(r.body[4], "requests 5");
    EXPECT_EQ(r.body[5], "request-errors 2");
    EXPECT_EQ(r.body[6], "events-emitted 1");
    EXPECT_EQ(r.body[7], "events-dropped 0");
    EXPECT_EQ(r.body[8], "transport scripted commands=0 corrupt=0 polls=0");
}

TEST(Controller, RenderTraceReplayHelpQuit) {
    ScriptedSession s;
    s.push(gl::Cmd::StateEnter, static_cast<std::uint32_t>(s.sm_id.raw),
           static_cast<std::uint32_t>(s.s_idle.raw), 0, rt::kMs);
    s.push(gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(s.speed.raw), 0, 1.0f,
           2 * rt::kMs);
    ASSERT_TRUE(s.exec("run 5").ok());

    auto ascii = s.exec("render ascii");
    ASSERT_TRUE(ascii.ok());
    EXPECT_FALSE(ascii.body.empty());
    auto svg = s.exec("render svg");
    ASSERT_TRUE(svg.ok());
    EXPECT_NE(svg.body[0].find("<svg"), std::string::npos);
    EXPECT_EQ(s.exec("render jpeg").code, gp::ErrorCode::BadArgument);

    auto vcd = s.exec("trace vcd");
    ASSERT_TRUE(vcd.ok());
    EXPECT_EQ(vcd.body[0], "$date gmdf trace $end");
    EXPECT_EQ(vcd.body[2], "$timescale 1ns $end");
    auto timing = s.exec("trace timing 32");
    ASSERT_TRUE(timing.ok());
    EXPECT_FALSE(timing.body.empty());
    EXPECT_EQ(s.exec("trace timing 2").code, gp::ErrorCode::BadArgument);

    auto replay = s.exec("replay");
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.body[0], "replay 2 frames (stride 1)");
    EXPECT_EQ(s.exec("replay 0").code, gp::ErrorCode::BadArgument);

    auto help = s.exec("help");
    ASSERT_TRUE(help.ok());
    auto one = s.exec("help break");
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one.body.size(), 4u);
    EXPECT_EQ(s.exec("help nothing").code, gp::ErrorCode::NotFound);

    auto quit = s.exec("quit");
    ASSERT_TRUE(quit.ok());
    EXPECT_EQ(quit.body[0], "bye");
}

// Every verb the dispatcher registers is exercised with a passing
// request — new verbs must come with coverage or this fails. The
// time-travel verbs need a deterministic target with a timeline, so
// they run against a built-in scenario; everything else runs on the
// scripted session.
TEST(Controller, EveryRegisteredVerbHasAPassingRequest) {
    ScriptedSession s;
    const std::vector<std::string> program = {
        "help",        "info",          "run 1",     "pause",
        "step",        "step-filter",   "resume",    "break add state run",
        "break list",  "query stats",   "render ascii", "trace timing",
        "replay",      "quit",
    };
    std::set<std::string> exercised;
    for (const std::string& line : program) {
        auto resp = s.exec(line);
        EXPECT_TRUE(resp.ok()) << line << " -> " << gp::format_response(resp);
        auto parsed = gp::parse_request(line);
        ASSERT_TRUE(parsed.ok());
        exercised.insert(parsed.request->verb);
    }

    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    const std::vector<std::string> replay_program = {
        "checkpoint auto 100", "checkpoint now", "run 300", "checkpoint list",
        "rewind 150",          "run 150",        "step-back 1", "bisect",
    };
    for (const std::string& line : replay_program) {
        auto resp = scenario->controller().execute_line(line);
        EXPECT_TRUE(resp.ok()) << line << " -> " << gp::format_response(resp);
        auto parsed = gp::parse_request(line);
        ASSERT_TRUE(parsed.ok());
        exercised.insert(parsed.request->verb);
    }

    auto verbs = s.session->controller().dispatcher().verbs();
    for (const std::string& verb : verbs)
        EXPECT_TRUE(exercised.contains(verb)) << "verb '" << verb << "' untested";
}

// The C++ control surface routes through the same dispatcher handlers,
// so the protocol counters see it.
TEST(Session, ControlMethodsRouteThroughDispatcher) {
    ScriptedSession s;
    auto before = s.session->engine().stats().requests;
    s.session->pause();
    s.session->step("ctl");
    s.session->resume();
    s.session->set_step_actor("");
    EXPECT_EQ(s.session->engine().stats().requests, before + 4);
    EXPECT_EQ(s.transport->pauses(), 1u);
    EXPECT_EQ(s.transport->resumes(), 1u);
    ASSERT_EQ(s.transport->steps().size(), 1u);
    EXPECT_EQ(s.transport->steps()[0].actor, "ctl");
}

// ---- scenarios + golden transcript -----------------------------------------

TEST(Scenarios, KnownNamesBuildUnknownRejected) {
    EXPECT_EQ(gp::make_scenario("no_such"), nullptr);
    for (const std::string& name : gp::scenario_names()) {
        auto scenario = gp::make_scenario(name);
        ASSERT_NE(scenario, nullptr) << name;
        EXPECT_TRUE(scenario->controller().execute_line("info").ok());
    }
}

TEST(Scenarios, TurntableBreakpointScenarioOverProtocol) {
    auto s = gp::make_scenario("turntable");
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(s->controller().execute_line("break add state drilling").ok());
    ASSERT_TRUE(s->controller().execute_line("run 400").ok());
    auto q = s->controller().execute_line("query state sequencer");
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q.body[0], "machine sequencer in drilling");
    bool hit = false;
    for (const auto& ev : s->controller().drain_events())
        if (ev.kind == gp::Event::Kind::BreakpointHit) hit = true;
    EXPECT_TRUE(hit);
}

TEST(Golden, QuickstartScriptTranscriptIsByteStable) {
    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/quickstart.gds");
    ASSERT_TRUE(script) << "missing examples/quickstart.gds";
    std::ostringstream out;
    auto result = gp::run_script(scenario->controller(), script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/quickstart_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/quickstart_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());
}

} // namespace
