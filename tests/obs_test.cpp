// Tests for the observability layer (src/obs/): histogram bucket math and
// percentile extraction, registry find-or-create semantics and concurrent
// updates (the TSan target), the two render surfaces (`metrics [prefix]`
// text dump, Prometheus exposition incl. a live GET /metrics scrape over
// loopback), tracer Chrome-JSON well-formedness from a real sharded pump,
// instrumentation deltas on the dispatch/pump/replay paths, and the
// zero-drift contract: golden transcripts stay byte-identical with metrics
// and tracing fully enabled.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "hub/controller.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"

namespace gh = gmdf::hub;
namespace gn = gmdf::net;
namespace go = gmdf::obs;
namespace gp = gmdf::proto;

namespace {

// ---- histogram math ---------------------------------------------------------

TEST(Histogram, BucketIndexAndBounds) {
    EXPECT_EQ(go::Histogram::bucket_index(0), 0);
    EXPECT_EQ(go::Histogram::bucket_index(1), 1);
    EXPECT_EQ(go::Histogram::bucket_index(2), 2);
    EXPECT_EQ(go::Histogram::bucket_index(3), 2);
    EXPECT_EQ(go::Histogram::bucket_index(4), 3);
    EXPECT_EQ(go::Histogram::bucket_index(1023), 10);
    EXPECT_EQ(go::Histogram::bucket_index(1024), 11);
    EXPECT_EQ(go::Histogram::bucket_index(~std::uint64_t{0}),
              go::Histogram::kBuckets - 1);

    EXPECT_EQ(go::Histogram::bucket_upper(0), 0u);
    EXPECT_EQ(go::Histogram::bucket_upper(1), 1u);
    EXPECT_EQ(go::Histogram::bucket_upper(2), 3u);
    EXPECT_EQ(go::Histogram::bucket_upper(10), 1023u);
    EXPECT_EQ(go::Histogram::bucket_upper(go::Histogram::kBuckets - 1),
              ~std::uint64_t{0});

    // Every value lands in the bucket whose bounds contain it.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 100ull, 4095ull, 4096ull}) {
        const int i = go::Histogram::bucket_index(v);
        EXPECT_LE(v, go::Histogram::bucket_upper(i)) << v;
        if (i > 0) EXPECT_GT(v, go::Histogram::bucket_upper(i - 1)) << v;
    }
}

TEST(Histogram, PercentilesAndMean) {
    go::Histogram h;
    const go::Histogram::Snapshot empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.percentile(50), 0.0);
    EXPECT_EQ(empty.mean(), 0.0);

    // 100 samples of 100 ns: every percentile interpolates inside the
    // [64, 127] bucket, the mean is exact.
    for (int i = 0; i < 100; ++i) h.record(100);
    const go::Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.sum, 10'000u);
    EXPECT_EQ(snap.mean(), 100.0);
    for (double p : {1.0, 50.0, 99.0}) {
        EXPECT_GE(snap.percentile(p), 64.0) << p;
        EXPECT_LE(snap.percentile(p), 127.0) << p;
    }
    // Rank ordering holds across a bimodal distribution.
    go::Histogram h2;
    for (int i = 0; i < 90; ++i) h2.record(10);
    for (int i = 0; i < 10; ++i) h2.record(100'000);
    const auto s2 = h2.snapshot();
    EXPECT_LT(s2.percentile(50), 16.0);
    EXPECT_GT(s2.percentile(99), 65'000.0);
    EXPECT_LE(s2.percentile(0), s2.percentile(50));
    EXPECT_LE(s2.percentile(50), s2.percentile(100));
}

// ---- registry ---------------------------------------------------------------

TEST(Registry, HandlesAreStableAndSharedByName) {
    go::Registry reg;
    go::Counter& a = reg.counter("x.requests", "verb", "run");
    go::Counter& b = reg.counter("x.requests", "verb", "run");
    EXPECT_EQ(&a, &b);
    go::Counter& other = reg.counter("x.requests", "verb", "query");
    EXPECT_NE(&a, &other);
    EXPECT_EQ(reg.metric_count(), 2u);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, KindMismatchThrows) {
    go::Registry reg;
    reg.counter("x.metric");
    EXPECT_THROW(reg.gauge("x.metric"), std::logic_error);
    EXPECT_THROW(reg.histogram("x.metric"), std::logic_error);
    reg.histogram("x.latency");
    EXPECT_THROW(reg.counter("x.latency"), std::logic_error);
}

TEST(Registry, DisabledMetricsAreNoOps) {
    go::Registry reg;
    go::Counter& c = reg.counter("x.gated");
    go::Histogram& h = reg.histogram("x.gated_ns");
    go::set_metrics_enabled(false);
    c.add(5);
    h.record(123);
    go::set_metrics_enabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Registry, TextDumpFormatAndPrefixFilter) {
    go::Registry reg;
    reg.counter("b.count").add(7);
    reg.gauge("a.level").set(-3);
    go::Histogram& h = reg.histogram("c.lat_ns", "verb", "run");
    for (int i = 0; i < 4; ++i) h.record(100);

    const std::vector<std::string> all = reg.text_dump();
    ASSERT_EQ(all.size(), 3u); // sorted by (name, label)
    EXPECT_EQ(all[0], "a.level -3");
    EXPECT_EQ(all[1], "b.count 7");
    EXPECT_EQ(all[2].substr(0, 22), "c.lat_ns{verb=run} cou");
    EXPECT_NE(all[2].find("count=4"), std::string::npos);
    EXPECT_NE(all[2].find("mean=100"), std::string::npos);

    const std::vector<std::string> filtered = reg.text_dump("b.");
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0], "b.count 7");
    EXPECT_TRUE(reg.text_dump("nope.").empty());
}

TEST(Registry, PrometheusExposition) {
    go::Registry reg;
    reg.counter("req.total", "verb", "run").add(2);
    reg.counter("req.total", "verb", "query").add(1);
    reg.gauge("live").set(4);
    go::Histogram& h = reg.histogram("lat.ns");
    h.record(0);
    h.record(1);
    h.record(3);

    const std::string text = reg.prometheus_text();
    // One TYPE line per family even with two labeled series.
    EXPECT_EQ(text,
              "# TYPE gmdf_lat_ns histogram\n"
              "gmdf_lat_ns_bucket{le=\"0\"} 1\n"
              "gmdf_lat_ns_bucket{le=\"1\"} 2\n"
              "gmdf_lat_ns_bucket{le=\"3\"} 3\n"
              "gmdf_lat_ns_bucket{le=\"+Inf\"} 3\n"
              "gmdf_lat_ns_sum 4\n"
              "gmdf_lat_ns_count 3\n"
              "# TYPE gmdf_live gauge\n"
              "gmdf_live 4\n"
              "# TYPE gmdf_req_total counter\n"
              "gmdf_req_total{verb=\"query\"} 1\n"
              "gmdf_req_total{verb=\"run\"} 2\n");
}

TEST(Registry, CollectorsRunAtScrapeAndUnregister) {
    go::Registry reg;
    int owner = 0;
    std::atomic<int> runs{0};
    reg.add_collector(&owner, [&](go::Registry& r) {
        runs.fetch_add(1);
        r.gauge("derived.value").set(runs.load());
    });
    (void)reg.text_dump();
    (void)reg.prometheus_text();
    EXPECT_EQ(runs.load(), 2);
    EXPECT_EQ(reg.gauge("derived.value").value(), 2);
    reg.remove_collector(&owner);
    (void)reg.text_dump();
    EXPECT_EQ(runs.load(), 2);
}

// The TSan target: concurrent find-or-create against the sharded map plus
// lock-free handle updates, with scrapes racing the writers.
TEST(Registry, ConcurrentRegistrationAndUpdates) {
    go::Registry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // All threads fight over the same few names.
                reg.counter("race.count", "slot", std::to_string(i % 4)).add();
                reg.histogram("race.lat", "slot", std::to_string(i % 4))
                    .record(static_cast<std::uint64_t>(i));
                if (i % 512 == 0) (void)reg.text_dump();
                (void)t;
            }
        });
    for (auto& th : threads) th.join();

    std::uint64_t total = 0;
    for (int s = 0; s < 4; ++s)
        total += reg.counter("race.count", "slot", std::to_string(s)).value();
    EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t samples = 0;
    for (int s = 0; s < 4; ++s)
        samples += reg.histogram("race.lat", "slot", std::to_string(s)).snapshot().count;
    EXPECT_EQ(samples, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- instrumentation deltas -------------------------------------------------

TEST(Instrumentation, DispatchCountsAndTimesPerVerb) {
    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    go::Counter& requests = go::registry().counter("proto.requests", "verb", "info");
    go::Histogram& latency = go::registry().histogram("proto.request_ns", "verb", "info");
    const std::uint64_t before = requests.value();
    const std::uint64_t samples_before = latency.snapshot().count;
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(scenario->controller().execute_line("info").ok());
    EXPECT_EQ(requests.value(), before + 3);
    EXPECT_EQ(latency.snapshot().count, samples_before + 3);
}

TEST(Instrumentation, PumpSlicesFeedTheHistogram) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "b1"), nullptr);
    go::Histogram& slices = go::registry().histogram("hub.pump.slice_ns");
    const std::uint64_t before = slices.snapshot().count;
    ASSERT_TRUE(hub.execute_line("run 100").ok());
    EXPECT_GT(slices.snapshot().count, before);
}

TEST(Instrumentation, ReplayCaptureAndRestoreAreTimed) {
    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    go::Histogram& capture = go::registry().histogram("replay.capture_ns");
    go::Histogram& restore = go::registry().histogram("replay.restore_ns");
    const std::uint64_t cap_before = capture.snapshot().count;
    const std::uint64_t res_before = restore.snapshot().count;
    auto& ctl = scenario->controller();
    ASSERT_TRUE(ctl.execute_line("checkpoint auto 100").ok());
    ASSERT_TRUE(ctl.execute_line("run 500").ok());
    ASSERT_TRUE(ctl.execute_line("rewind 250").ok());
    EXPECT_GT(capture.snapshot().count, cap_before);
    EXPECT_GT(restore.snapshot().count, res_before);
}

// ---- the metrics verb -------------------------------------------------------

TEST(MetricsVerb, DumpsSortedAndFiltersByPrefix) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "b1"), nullptr);

    auto resp = hub.execute_line("metrics");
    ASSERT_TRUE(resp.ok());
    ASSERT_FALSE(resp.body.empty());
    // Sorted by (name, label value) — note the sort key is the pair, not
    // the rendered line ("{verb=step}" vs "{verb=step-back}" would flip).
    auto sort_key = [](const std::string& line) {
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        if (brace == std::string::npos || brace > space)
            return std::make_pair(line.substr(0, space), std::string());
        const std::size_t eq = line.find('=', brace);
        const std::size_t close = line.find('}', brace);
        return std::make_pair(line.substr(0, brace),
                              line.substr(eq + 1, close - eq - 1));
    };
    for (std::size_t i = 1; i < resp.body.size(); ++i)
        EXPECT_LE(sort_key(resp.body[i - 1]), sort_key(resp.body[i]))
            << resp.body[i - 1] << " | " << resp.body[i];

    auto hub_only = hub.execute_line("metrics hub.");
    ASSERT_TRUE(hub_only.ok());
    ASSERT_FALSE(hub_only.body.empty());
    for (const auto& line : hub_only.body)
        EXPECT_EQ(line.substr(0, 4), "hub.") << line;

    auto none = hub.execute_line("metrics zzz.nothing");
    ASSERT_TRUE(none.ok());
    ASSERT_EQ(none.body.size(), 1u);
    EXPECT_EQ(none.body[0], "(no metrics match 'zzz.nothing')");

    auto bad = hub.execute_line("metrics a b");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code, gp::ErrorCode::BadArgument);
}

// ---- GET /metrics over a live loopback server -------------------------------

int raw_dial(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    timeval tv{5, 0}; // a hung read fails the test instead of the run
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

/// One-shot HTTP exchange: send `request`, read to close.
std::string raw_http(std::uint16_t port, std::string_view request) {
    int fd = raw_dial(port);
    std::string_view rest = request;
    while (!rest.empty()) {
        ssize_t n = ::send(fd, rest.data(), rest.size(), MSG_NOSIGNAL);
        EXPECT_GT(n, 0) << std::strerror(errno);
        if (n <= 0) break;
        rest.remove_prefix(static_cast<std::size_t>(n));
    }
    std::string out;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        out.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

TEST(Scrape, GetMetricsServesPrometheusText) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    gn::Server server(hub, {});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::atomic<bool> stop{false};
    std::thread loop([&] { server.run(stop); });

    const std::string reply =
        raw_http(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_EQ(reply.substr(0, 15), "HTTP/1.0 200 OK");
    EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    const std::size_t body_at = reply.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = reply.substr(body_at + 4);

    // Content-Length matches the body exactly (one-shot close framing).
    const std::size_t len_at = reply.find("Content-Length: ");
    ASSERT_NE(len_at, std::string::npos);
    EXPECT_EQ(std::stoul(reply.substr(len_at + 16)), body.size());

    // Every family in the committed exposition catalog is present.
    std::ifstream golden(std::string(GMDF_SOURCE_DIR) +
                         "/tests/golden/metrics_exposition.txt");
    ASSERT_TRUE(golden) << "missing tests/golden/metrics_exposition.txt";
    std::string type_line;
    while (std::getline(golden, type_line))
        EXPECT_NE(body.find(type_line + "\n"), std::string::npos) << type_line;

    // The scrape counted itself.
    const std::string not_found =
        raw_http(server.port(), "GET /nope HTTP/1.0\r\n\r\n");
    EXPECT_EQ(not_found.substr(0, 22), "HTTP/1.0 404 Not Found");

    stop.store(true);
    loop.join();
    EXPECT_GE(server.stats().accepted, 2u);
}

// ---- tracer -----------------------------------------------------------------

/// Minimal structural JSON check: balanced containers outside strings,
/// no trailing garbage. Enough to catch escaping/comma bugs without a
/// JSON library.
bool json_is_well_formed(const std::string& text) {
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped) escaped = false;
            else if (c == '\\') escaped = true;
            else if (c == '"') in_string = false;
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': case '[': ++depth; break;
            case '}': case ']':
                if (--depth < 0) return false;
                break;
            default: break;
        }
    }
    return depth == 0 && !in_string;
}

TEST(Tracer, ShardedPumpExportsWellFormedChromeTrace) {
    gh::HubController hub;
    hub.scheduler().set_threads(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_NE(hub.open("blinker", "b" + std::to_string(i)), nullptr);

    go::tracer().set_capacity(1 << 14);
    go::tracer().start();
    ASSERT_TRUE(
        hub.execute_line("run 200").ok());
    go::tracer().stop();
    EXPECT_GT(go::tracer().event_count(), 0u);

    std::ostringstream out;
    go::tracer().write_chrome_json(out);
    const std::string json = out.str();
    EXPECT_TRUE(json_is_well_formed(json)) << json.substr(0, 400);
    EXPECT_EQ(json.substr(0, 16), "{\"traceEvents\":[");
    EXPECT_NE(json.find("\"name\":\"pump-slice\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Shard thread-name metadata rows label the Perfetto tracks.
    EXPECT_NE(json.find("\"shard-0\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    // Span args (session names) made it through escaping.
    EXPECT_NE(json.find("\"session\""), std::string::npos);
}

TEST(Tracer, StartClearsAndStopFreezes) {
    go::tracer().set_capacity(1 << 10);
    go::tracer().start();
    { go::Span span("test", "one"); }
    go::tracer().stop();
    const std::size_t frozen = go::tracer().event_count();
    EXPECT_GE(frozen, 1u);
    { go::Span span("test", "ignored-while-stopped"); }
    EXPECT_EQ(go::tracer().event_count(), frozen);
    go::tracer().start();
    EXPECT_EQ(go::tracer().event_count(), 0u); // start() cleared the capture
    go::tracer().stop();
}

TEST(Tracer, DropsOldestWhenFull) {
    go::tracer().set_capacity(8); // 1 slot per ring
    go::tracer().start();
    for (int i = 0; i < 50; ++i) {
        go::Span span("test", "spin-", std::to_string(i));
    }
    go::tracer().stop();
    EXPECT_LE(go::tracer().event_count(), 8u);
    EXPECT_GT(go::tracer().dropped(), 0u);
    std::ostringstream out;
    go::tracer().write_chrome_json(out);
    EXPECT_TRUE(json_is_well_formed(out.str()));
    go::tracer().set_capacity(1 << 18); // restore the default for later tests
}

// ---- the profile verbs ------------------------------------------------------

TEST(TraceProfileVerb, StartStopDumpRoundTrip) {
    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    auto& ctl = scenario->controller();

    EXPECT_FALSE(ctl.execute_line("trace profile stop").ok()); // not running
    ASSERT_TRUE(ctl.execute_line("trace profile start").ok());
    ASSERT_TRUE(ctl.execute_line("run 100").ok());
    auto stop = ctl.execute_line("trace profile stop");
    ASSERT_TRUE(stop.ok());
    ASSERT_FALSE(stop.body.empty());

    const std::string path = ::testing::TempDir() + "gmdf_obs_profile.json";
    auto dump = ctl.execute_line("trace profile dump " + path);
    ASSERT_TRUE(dump.ok());
    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_TRUE(json_is_well_formed(text.str()));
    EXPECT_NE(text.str().find("dispatch:run"), std::string::npos);
    std::remove(path.c_str());
}

// ---- zero transcript drift --------------------------------------------------

// The hard contract of this layer: with metrics AND tracing fully enabled,
// the golden quickstart transcript is still byte-identical. Instrumentation
// must never leak wall-clock values into verb output.
TEST(Golden, QuickstartTranscriptUnchangedWithObsFullyEnabled) {
    go::set_metrics_enabled(true);
    go::tracer().set_capacity(1 << 16);
    go::tracer().start();

    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/quickstart.gds");
    ASSERT_TRUE(script) << "missing examples/quickstart.gds";
    std::ostringstream out;
    auto result = gp::run_script(scenario->controller(), script, out);
    go::tracer().stop();
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/quickstart_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/quickstart_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());
    EXPECT_GT(go::tracer().event_count(), 0u); // the capture really ran
}

} // namespace
