// Unit tests for the simulated target: event kernel, memory map, signal
// store, and the timed-multitasking node scheduler.
#include <gtest/gtest.h>

#include "rt/des.hpp"
#include "rt/memory.hpp"
#include "rt/target.hpp"

namespace rt = gmdf::rt;

namespace {

TEST(Simulator, DispatchesInTimeOrder) {
    rt::Simulator sim;
    std::vector<int> order;
    sim.at(30, [&] { order.push_back(3); });
    sim.at(10, [&] { order.push_back(1); });
    sim.at(20, [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAtEqualTimes) {
    rt::Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) sim.at(7, [&order, i] { order.push_back(i); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilAdvancesToHorizon) {
    rt::Simulator sim;
    int fired = 0;
    sim.at(5, [&] { ++fired; });
    sim.at(15, [&] { ++fired; });
    sim.run_until(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 10);
    EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, SchedulingInPastThrows) {
    rt::Simulator sim;
    sim.at(10, [] {});
    sim.run_until(10);
    EXPECT_THROW(sim.at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
    rt::Simulator sim;
    std::vector<rt::SimTime> fires;
    sim.at(1, [&] {
        fires.push_back(sim.now());
        sim.after(4, [&] { fires.push_back(sim.now()); });
    });
    sim.run_all();
    EXPECT_EQ(fires, (std::vector<rt::SimTime>{1, 5}));
}

TEST(Simulator, EveryRepeats) {
    rt::Simulator sim;
    int count = 0;
    sim.every(10, 10, [&] { ++count; });
    sim.run_until(55);
    EXPECT_EQ(count, 5); // t = 10,20,30,40,50
}

TEST(Simulator, EveryRejectsBadPeriod) {
    rt::Simulator sim;
    EXPECT_THROW(sim.every(0, 0, [] {}), std::invalid_argument);
}

TEST(MemoryMap, AllocReadWrite) {
    rt::MemoryMap mem;
    auto a = mem.alloc("x");
    auto b = mem.alloc("y");
    EXPECT_EQ(a, rt::MemoryMap::kBase);
    EXPECT_EQ(b, rt::MemoryMap::kBase + 4);
    mem.write_u32(a, 0xDEADBEEF);
    EXPECT_EQ(mem.read_u32(a), 0xDEADBEEFu);
    EXPECT_EQ(mem.read_u32(b), 0u);
    EXPECT_EQ(mem.address_of("y"), b);
    EXPECT_TRUE(mem.has_symbol("x"));
    EXPECT_FALSE(mem.has_symbol("z"));
}

TEST(MemoryMap, FloatRoundTrip) {
    rt::MemoryMap mem;
    auto a = mem.alloc("f");
    mem.write_f32(a, 3.25f);
    EXPECT_FLOAT_EQ(mem.read_f32(a), 3.25f);
}

TEST(MemoryMap, Errors) {
    rt::MemoryMap mem;
    auto a = mem.alloc("x");
    EXPECT_THROW(mem.alloc("x"), std::invalid_argument);
    EXPECT_THROW((void)mem.address_of("nope"), std::out_of_range);
    EXPECT_THROW((void)mem.read_u32(a + 4), std::out_of_range);    // beyond allocation
    EXPECT_THROW((void)mem.read_u32(a + 2), std::out_of_range);    // unaligned
    EXPECT_THROW((void)mem.read_u32(rt::MemoryMap::kBase - 4), std::out_of_range);
}

TEST(SignalStore, AddAndLookup) {
    rt::SignalStore store;
    int a = store.add("speed", 1.5);
    int b = store.add("dir");
    EXPECT_EQ(store.index_of("speed"), a);
    EXPECT_EQ(store.index_of("dir"), b);
    EXPECT_EQ(store.index_of("nope"), -1);
    EXPECT_DOUBLE_EQ(store.init(a), 1.5);
    EXPECT_THROW(store.add("speed"), std::invalid_argument);
}

// Task body that copies input to output with a fixed cycle cost, counting
// executions and optionally emitting debug bytes.
class EchoBody final : public rt::TaskBody {
public:
    explicit EchoBody(std::uint64_t cycles, std::size_t debug_bytes = 0)
        : cycles_(cycles), debug_bytes_(debug_bytes) {}

    int runs = 0;
    std::vector<double> seen_inputs;

    std::uint64_t execute(rt::TaskContext& ctx) override {
        ++runs;
        if (!ctx.inputs().empty()) {
            seen_inputs.push_back(ctx.inputs()[0]);
            if (!ctx.outputs().empty()) ctx.outputs()[0] = ctx.inputs()[0] * 2.0;
        }
        if (debug_bytes_ > 0) {
            std::vector<std::uint8_t> frame(debug_bytes_, 0xAB);
            ctx.send_debug(frame);
        }
        return cycles_;
    }

private:
    std::uint64_t cycles_;
    std::size_t debug_bytes_;
};

struct TargetFixture {
    rt::Target target;
    rt::Node* node;
    int sig_in, sig_out;

    explicit TargetFixture(rt::OutputMode mode = rt::OutputMode::LatchAtDeadline)
        : target(mode) {
        sig_in = target.signals().add("in", 5.0);
        sig_out = target.signals().add("out", 0.0);
        node = &target.add_node(48e6);
    }

    EchoBody* add_echo(const std::string& name, rt::SimTime period, rt::SimTime deadline,
                       std::uint64_t cycles, int priority = 0) {
        auto body = std::make_unique<EchoBody>(cycles);
        EchoBody* raw = body.get();
        rt::TaskConfig cfg;
        cfg.name = name;
        cfg.period = period;
        cfg.deadline = deadline;
        cfg.priority = priority;
        cfg.input_signals = {sig_in};
        cfg.output_signals = {sig_out};
        node->add_task(std::move(cfg), std::move(body));
        return raw;
    }
};

TEST(Node, PeriodicExecution) {
    TargetFixture f;
    auto* body = f.add_echo("t", 10 * rt::kMs, 0, 1000);
    f.target.start();
    f.target.run_for(105 * rt::kMs);
    EXPECT_EQ(body->runs, 10);
    EXPECT_EQ(f.node->task_stats("t").releases, 10u);
    EXPECT_EQ(f.node->task_stats("t").completions, 10u);
}

TEST(Node, OutputLatchedExactlyAtDeadline) {
    TargetFixture f;
    f.add_echo("t", 10 * rt::kMs, 4 * rt::kMs, 1000);
    f.target.start();
    f.target.run_for(50 * rt::kMs);
    const auto& offsets = f.node->task_stats("t").output_offsets;
    ASSERT_FALSE(offsets.empty());
    for (auto off : offsets) EXPECT_EQ(off, 4 * rt::kMs); // zero jitter
    EXPECT_DOUBLE_EQ(f.node->signal(f.sig_out), 10.0);    // 5.0 * 2
}

TEST(Node, ImmediateModeLatchesAtCompletion) {
    TargetFixture f(rt::OutputMode::Immediate);
    f.add_echo("t", 10 * rt::kMs, 0, 48'000); // 1ms at 48MHz
    f.target.start();
    f.target.run_for(50 * rt::kMs);
    const auto& offsets = f.node->task_stats("t").output_offsets;
    ASSERT_FALSE(offsets.empty());
    for (auto off : offsets) {
        EXPECT_GE(off, 1 * rt::kMs);
        EXPECT_LT(off, 2 * rt::kMs); // completion, far before the 10ms deadline
    }
}

TEST(Node, InputLatchedAtRelease) {
    TargetFixture f;
    auto* body = f.add_echo("t", 10 * rt::kMs, 0, 1000);
    f.target.start();
    // Change the input signal between releases; the latch must pick up
    // the value as of each release instant.
    f.target.sim().at(15 * rt::kMs, [&] { f.node->publish_signal(f.sig_in, 7.0); });
    f.target.run_for(35 * rt::kMs);
    ASSERT_EQ(body->seen_inputs.size(), 3u); // releases at 10, 20, 30 ms
    EXPECT_DOUBLE_EQ(body->seen_inputs[0], 5.0);
    EXPECT_DOUBLE_EQ(body->seen_inputs[1], 7.0);
    EXPECT_DOUBLE_EQ(body->seen_inputs[2], 7.0);
}

TEST(Node, DeadlineMissRecorded) {
    TargetFixture f;
    // 3ms of work against a 2ms deadline.
    f.add_echo("t", 10 * rt::kMs, 2 * rt::kMs, 144'000);
    f.target.start();
    f.target.run_for(45 * rt::kMs);
    EXPECT_GE(f.node->task_stats("t").deadline_misses, 4u);
}

TEST(Node, OverrunSkipsRelease) {
    TargetFixture f;
    // 15ms of work against a 10ms period: every other release overruns.
    f.add_echo("t", 10 * rt::kMs, 10 * rt::kMs, 720'000);
    f.target.start();
    f.target.run_for(100 * rt::kMs);
    EXPECT_GE(f.node->task_stats("t").overruns, 3u);
}

TEST(Node, PriorityOrdersReadyJobs) {
    TargetFixture f;
    // Both release at t=10ms; the high-priority (lower value) task runs first.
    auto* lo = f.add_echo("lo", 10 * rt::kMs, 0, 48'000, 5);
    auto* hi = f.add_echo("hi", 10 * rt::kMs, 0, 48'000, 1);
    std::vector<std::string> started;
    f.target.start();
    f.target.run_for(11 * rt::kMs);
    // Both executed once; verify response times: hi completed at +1ms,
    // lo waited for hi (response ~2ms).
    EXPECT_EQ(hi->runs, 1);
    EXPECT_EQ(lo->runs, 1);
    EXPECT_LT(f.node->task_stats("hi").worst_response,
              f.node->task_stats("lo").worst_response);
}

TEST(Node, CpuUtilizationAccounted) {
    TargetFixture f;
    f.add_echo("t", 10 * rt::kMs, 0, 48'000); // 1ms per 10ms = 10%
    f.target.start();
    f.target.run_for(100 * rt::kMs);
    EXPECT_NEAR(f.node->cpu_utilization(100 * rt::kMs), 0.10, 0.02);
}

TEST(Node, DebugBytesCostCyclesAndArriveAfterWireDelay) {
    TargetFixture f;
    auto body = std::make_unique<EchoBody>(1000, 20); // 20 debug bytes per scan
    rt::TaskConfig cfg;
    cfg.name = "t";
    cfg.period = 10 * rt::kMs;
    f.node->add_task(std::move(cfg), std::move(body));

    std::vector<rt::SimTime> deliveries;
    f.target.set_debug_sink([&](int node_id, std::span<const std::uint8_t> bytes,
                                rt::SimTime at) {
        EXPECT_EQ(node_id, 0);
        EXPECT_EQ(bytes.size(), 20u);
        deliveries.push_back(at);
    });
    f.target.start();
    f.target.run_for(25 * rt::kMs);

    ASSERT_EQ(deliveries.size(), 2u);
    // 20 bytes * 10 bits / 115200 baud ~= 1.736 ms after completion.
    EXPECT_GT(deliveries[0], 10 * rt::kMs + 1700 * rt::kUs);
    // Instrumentation cycles: frame (60) + 20 * 100 per scan.
    EXPECT_EQ(f.node->instr_cycles(), 2u * (60 + 20 * 100));
    EXPECT_EQ(f.node->app_cycles(), 2u * 1000);
}

TEST(Node, SignalMemoryMirror) {
    TargetFixture f;
    auto addr = f.node->memory().alloc("sig_out");
    f.node->map_signal_memory(f.sig_out, addr);
    f.add_echo("t", 10 * rt::kMs, 0, 1000);
    f.target.start();
    f.target.run_for(25 * rt::kMs);
    EXPECT_FLOAT_EQ(f.node->memory().read_f32(addr), 10.0f);
}

TEST(Target, PauseSuppressesReleases) {
    TargetFixture f;
    auto* body = f.add_echo("t", 10 * rt::kMs, 0, 1000);
    f.target.start();
    f.target.run_for(25 * rt::kMs);
    EXPECT_EQ(body->runs, 2);
    f.target.pause();
    f.target.run_for(30 * rt::kMs);
    EXPECT_EQ(body->runs, 2);
    EXPECT_GE(f.node->task_stats("t").suppressed, 2u);
    f.target.resume();
    f.target.run_for(30 * rt::kMs);
    EXPECT_GE(body->runs, 4);
}

TEST(Target, SingleStepExecutesOneRelease) {
    TargetFixture f;
    auto* body = f.add_echo("t", 10 * rt::kMs, 0, 1000);
    f.target.start();
    f.target.pause();
    f.target.run_for(25 * rt::kMs);
    EXPECT_EQ(body->runs, 0);
    f.target.request_single_step();
    f.target.run_for(20 * rt::kMs);
    EXPECT_EQ(body->runs, 1); // exactly one release went through
}

TEST(Target, NetworkPropagatesSignalsWithLatency) {
    rt::Target target;
    int sig = target.signals().add("x", 0.0);
    auto& n0 = target.add_node();
    auto& n1 = target.add_node();
    target.set_network_latency(500 * rt::kUs);
    target.start();
    target.sim().at(10 * rt::kMs, [&] { n0.publish_signal(sig, 42.0); });
    target.run_for(10 * rt::kMs + 400 * rt::kUs);
    EXPECT_DOUBLE_EQ(n0.signal(sig), 42.0); // local write immediate
    EXPECT_DOUBLE_EQ(n1.signal(sig), 0.0);  // still in flight
    target.run_for(200 * rt::kUs);
    EXPECT_DOUBLE_EQ(n1.signal(sig), 42.0); // delivered after latency
}

TEST(Target, StartTwiceThrows) {
    rt::Target target;
    target.add_node();
    target.start();
    EXPECT_THROW(target.start(), std::logic_error);
    EXPECT_THROW(target.add_node(), std::logic_error);
}

// Jitter property: under deadline latching, output jitter is exactly zero
// regardless of a competing load task; in immediate mode it is not.
class JitterSweep : public ::testing::TestWithParam<bool> {};

TEST_P(JitterSweep, LatchedImpliesZeroJitter) {
    bool latched = GetParam();
    TargetFixture f(latched ? rt::OutputMode::LatchAtDeadline : rt::OutputMode::Immediate);
    f.add_echo("main", 10 * rt::kMs, 8 * rt::kMs, 48'000, 2);
    // Interfering higher-priority task with alternating cost via two tasks
    // at different phases.
    auto noisy = std::make_unique<EchoBody>(96'000);
    rt::TaskConfig cfg;
    cfg.name = "noise";
    cfg.period = 7 * rt::kMs;
    cfg.priority = 1;
    f.node->add_task(std::move(cfg), std::move(noisy));
    f.target.start();
    f.target.run_for(500 * rt::kMs);

    const auto& offsets = f.node->task_stats("main").output_offsets;
    ASSERT_GT(offsets.size(), 10u);
    rt::SimTime lo = offsets[0], hi = offsets[0];
    for (auto o : offsets) {
        lo = std::min(lo, o);
        hi = std::max(hi, o);
    }
    if (latched) {
        EXPECT_EQ(lo, hi) << "deadline latching must remove all jitter";
        EXPECT_EQ(lo, 8 * rt::kMs);
    } else {
        EXPECT_GT(hi - lo, 0) << "immediate outputs must show scheduling jitter";
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, JitterSweep, ::testing::Values(true, false));

} // namespace
