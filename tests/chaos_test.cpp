// Fault-tolerance tests: session crash isolation (a crashing neighbor
// leaves survivor transcripts byte-identical), watchdog quarantine of
// runaway sessions, `session revive` checkpoint restore, the hardened
// network layer (mid-request disconnects, idle timeouts with heartbeat
// keep-alive, accept load-shed), torn-frame-then-reconnect session
// resume through net::ChaosProxy, a seeded 10%-fault chaos campaign,
// and the bounded divergence/journal rings.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>

#include "campaign/chaos.hpp"
#include "core/observer.hpp"
#include "hub/controller.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"
#include "replay/timeline.hpp"
#include "rt/target.hpp"

namespace gc = gmdf::campaign;
namespace gh = gmdf::hub;
namespace gn = gmdf::net;
namespace gp = gmdf::proto;
namespace gr = gmdf::rt;

namespace {

// ---- session crash isolation ------------------------------------------------

/// Runs the same two-session fleet workload, optionally arming a crash
/// in session b at 30 ms, and returns the transcript of the a-addressed
/// script plus b's final health.
struct FleetRun {
    std::string transcript;
    bool b_faulted = false;
    std::string b_reason;
};

void run_fleet(bool arm_fault, FleetRun& result) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr) << "open a";
    gh::SessionRegistry::Entry* b = hub.open("blinker", "b");
    ASSERT_NE(b, nullptr) << "open b";
    if (arm_fault)
        b->scenario->target.inject_fault_at(30 * gr::kMs, "injected crash");

    // Every `run` pumps the whole fleet, so b crashes in the middle of
    // a's second run when armed.
    std::istringstream script("@a run 20\n"
                              "@a query signal led\n"
                              "@a run 20\n"
                              "@a query signal led\n"
                              "@a run 20\n"
                              "@a query stats\n");
    std::ostringstream out;
    (void)gp::run_script(hub, script, out);

    result.transcript = out.str();
    result.b_faulted = b->faulted();
    result.b_reason = b->fault_reason;
}

TEST(CrashIsolation, NeighborCrashLeavesSurvivorTranscriptByteIdentical) {
    FleetRun control;
    FleetRun chaotic;
    run_fleet(false, control);
    run_fleet(true, chaotic);

    EXPECT_FALSE(control.b_faulted);
    ASSERT_TRUE(chaotic.b_faulted) << "armed fault never fired";
    EXPECT_NE(chaotic.b_reason.find("injected crash"), std::string::npos)
        << chaotic.b_reason;
    // The whole point: a's transcript does not depend on whether its
    // neighbor crashed.
    ASSERT_FALSE(control.transcript.empty());
    EXPECT_EQ(control.transcript, chaotic.transcript);
}

TEST(CrashIsolation, FaultedSessionIsRefusedListedAndRevivable) {
    gh::HubController hub;
    gh::SessionRegistry::Entry* a = hub.open("blinker", "a");
    ASSERT_NE(a, nullptr);

    ASSERT_TRUE(hub.execute_line("@a run 100").ok());
    ASSERT_TRUE(hub.execute_line("@a checkpoint now").ok());
    (void)hub.drain_event_lines();

    a->scenario->target.inject_fault_at(150 * gr::kMs, "boom");
    gp::Response crash = hub.execute_line("@a run 100");
    ASSERT_TRUE(crash.ok()); // the request survives; the body reports the fault
    ASSERT_FALSE(crash.body.empty());
    EXPECT_NE(crash.body.back().find("! session a faulted: boom"), std::string::npos)
        << crash.body.back();
    ASSERT_TRUE(a->faulted());

    // Quarantined: routing refuses, the listing shows the fault.
    gp::Response refused = hub.execute_line("@a query signal led");
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.message.find("faulted"), std::string::npos) << refused.message;
    gp::Response list = hub.execute_line("session list");
    ASSERT_TRUE(list.ok());
    bool listed = false;
    for (const std::string& line : list.body)
        listed = listed || line.find("FAULTED: boom") != std::string::npos;
    EXPECT_TRUE(listed);
    gp::Response stats = hub.execute_line("session stats");
    ASSERT_TRUE(stats.ok());
    ASSERT_GT(stats.body.size(), 1u);
    EXPECT_EQ(stats.body[1], "sessions-faulted 1");

    // Revive restores the checkpoint captured at 100 ms and lifts the
    // quarantine; the one-shot fault is spent, so the session runs on.
    gp::Response revive = hub.execute_line("session revive a");
    ASSERT_TRUE(revive.ok()) << revive.message;
    ASSERT_GE(revive.body.size(), 2u);
    EXPECT_NE(revive.body[0].find("revived (was: boom)"), std::string::npos)
        << revive.body[0];
    EXPECT_NE(revive.body[1].find("restored checkpoint at 100 ms"), std::string::npos)
        << revive.body[1];
    EXPECT_FALSE(a->faulted());
    EXPECT_EQ(a->scenario->target.sim().now(), 100 * gr::kMs);
    EXPECT_TRUE(hub.execute_line("@a run 100").ok());
    EXPECT_TRUE(hub.execute_line("@a query signal led").ok());

    // Reviving a live session is a BadState, not a crash.
    EXPECT_FALSE(hub.execute_line("session revive a").ok());
}

// ---- pump watchdog ----------------------------------------------------------

TEST(Watchdog, RunawaySessionIsQuarantinedAfterMaxStrikes) {
    gh::SessionRegistry registry;
    gh::SessionRegistry::Entry* a = registry.open("blinker", "a");
    ASSERT_NE(a, nullptr);

    gh::PollScheduler sched;
    // A 500 ms slice executes thousands of engine steps — reliably over
    // a 1 us wall deadline on any host.
    sched.set_budget(500 * gr::kMs);
    gh::WatchdogConfig wd;
    wd.slice_limit_us = 1;
    wd.max_strikes = 2;
    sched.set_watchdog(wd);

    sched.pump(registry, 3000 * gr::kMs);
    ASSERT_TRUE(a->faulted());
    EXPECT_TRUE(a->runaway);
    EXPECT_NE(a->fault_reason.find("watchdog"), std::string::npos) << a->fault_reason;
    EXPECT_GE(sched.watchdog_stats().overruns, 2u);
    EXPECT_EQ(sched.watchdog_stats().runaways, 1u);

    // Quarantined for good: pumping again touches it no further.
    const std::string reason = a->fault_reason;
    sched.pump(registry, 1000 * gr::kMs);
    EXPECT_EQ(a->fault_reason, reason);
}

TEST(Watchdog, ShardedPumpQuarantinesRunawayAndSurvivorsKeepRunning) {
    gh::HubController hub;
    gh::SessionRegistry::Entry* a = hub.open("blinker", "a");
    gh::SessionRegistry::Entry* b = hub.open("blinker", "b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    hub.scheduler().set_threads(2);
    hub.scheduler().set_budget(500 * gr::kMs);
    gh::WatchdogConfig wd;
    wd.slice_limit_us = 1;
    wd.max_strikes = 1;
    hub.scheduler().set_watchdog(wd);

    // Both sessions blow the 1 us deadline on their first slice: the
    // whole fleet quarantines, and the stats lines say so.
    ASSERT_TRUE(hub.execute_line("@a run 1000").ok());
    EXPECT_TRUE(a->faulted());
    EXPECT_TRUE(b->faulted());
    EXPECT_TRUE(a->runaway);

    gp::Response shards = hub.execute_line("session stats shards");
    ASSERT_TRUE(shards.ok());
    bool watchdog_line = false;
    for (const std::string& line : shards.body)
        watchdog_line = watchdog_line ||
                        (line.find("watchdog limit 1 us") != std::string::npos &&
                         line.find("runaways 2") != std::string::npos);
    EXPECT_TRUE(watchdog_line) << "no watchdog summary in session stats shards";

    // Revive under a sane watchdog: the fleet runs again.
    gh::WatchdogConfig off;
    hub.scheduler().set_watchdog(off);
    ASSERT_TRUE(hub.execute_line("session revive a").ok());
    ASSERT_TRUE(hub.execute_line("session revive b").ok());
    EXPECT_TRUE(hub.execute_line("@a run 100").ok());
}

// ---- network hardening ------------------------------------------------------

class ChaosServer {
public:
    explicit ChaosServer(gn::ServerConfig config = {}) {
        EXPECT_NE(hub.open("blinker", "s"), nullptr);
        server.emplace(hub, std::move(config));
        std::string error;
        if (!server->start(&error)) ADD_FAILURE() << "start: " << error;
        thread = std::thread([this] { server->run(stop_flag, /*timeout_ms=*/5); });
    }

    ~ChaosServer() { join(); }

    void join() {
        if (!thread.joinable()) return;
        stop_flag.store(true);
        thread.join();
    }

    [[nodiscard]] std::uint16_t port() const { return server->port(); }

    gh::HubController hub;
    std::optional<gn::Server> server;
    std::atomic<bool> stop_flag{false};
    std::thread thread;
};

int raw_dial(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    timeval tv{5, 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

void raw_send(int fd, std::string_view bytes) {
    while (!bytes.empty()) {
        ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << std::strerror(errno);
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
}

TEST(NetHardening, MidRequestDisconnectLeavesServerServing) {
    ChaosServer srv;

    // A client that handshakes, starts a request frame — 64 bytes
    // promised, 5 delivered — and vanishes.
    int fd = raw_dial(srv.port());
    raw_send(fd, std::string(gn::kMagic) +
                     gn::encode_frame(gn::FrameType::Hello, gn::hello_payload()));
    char buf[256];
    ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0); // hello reply
    std::string torn = gn::encode_frame(gn::FrameType::Request, std::string(63, 'q'));
    raw_send(fd, torn.substr(0, 9));
    ::close(fd);

    // The server shrugs it off and keeps serving new clients.
    std::string error;
    auto channel = gn::Channel::connect("127.0.0.1", srv.port(), &error);
    ASSERT_NE(channel, nullptr) << error;
    gp::Response resp = channel->execute_line("attach s");
    EXPECT_TRUE(resp.ok()) << resp.message;
    EXPECT_TRUE(channel->execute_line("query signal led").ok());
    (void)channel->drain_event_lines();

    srv.join();
    EXPECT_GE(srv.server->stats().accepted, 2u);
    EXPECT_EQ(srv.server->stats().protocol_errors, 0u)
        << "a mid-frame EOF is a disconnect, not a protocol offence";
}

TEST(NetHardening, IdleTimeoutClosesSilentConnectionButPingKeepsAlive) {
    gn::ServerConfig config;
    config.idle_timeout_ms = 60;
    ChaosServer srv(config);

    auto quiet = gn::Channel::connect("127.0.0.1", srv.port());
    auto beating = gn::Channel::connect("127.0.0.1", srv.port());
    ASSERT_NE(quiet, nullptr);
    ASSERT_NE(beating, nullptr);

    // 200 ms of silence from `quiet`; `beating` heartbeats through it.
    for (int i = 0; i < 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_TRUE(beating->ping()) << "heartbeat " << i;
    }
    EXPECT_TRUE(beating->execute_line("query signal led").ok());
    gp::Response dead = quiet->execute_line("query signal led");
    EXPECT_FALSE(dead.ok()) << "idle connection outlived its timeout";

    srv.join();
    EXPECT_GE(srv.server->stats().idle_closed, 1u);
    EXPECT_GE(srv.server->stats().pings, 10u);
}

TEST(NetHardening, AcceptHighWaterShedsWithStructuredBusy) {
    gn::ServerConfig config;
    config.accept_high_water = 1;
    ChaosServer srv(config);

    auto first = gn::Channel::connect("127.0.0.1", srv.port());
    ASSERT_NE(first, nullptr);
    ASSERT_TRUE(first->execute_line("query signal led").ok());

    std::string error;
    auto shed = gn::Channel::connect("127.0.0.1", srv.port(), &error);
    EXPECT_EQ(shed, nullptr);
    EXPECT_NE(error.find("busy"), std::string::npos) << error;

    // The first client is unaffected by the shed.
    EXPECT_TRUE(first->execute_line("query signal led").ok());
    (void)first->drain_event_lines();

    srv.join();
    EXPECT_GE(srv.server->stats().busy_shed, 1u);
}

// ---- chaos proxy ------------------------------------------------------------

TEST(ChaosProxy, TornFrameThenReconnectResumesSession) {
    ChaosServer srv;

    gn::ChaosConfig chaos;
    chaos.upstream_port = srv.port();
    // Chunk 1 is the handshake, chunk 2 the attach, so the first query
    // is torn in half and cut.
    chaos.disconnect_after_chunks = 3;
    gn::ChaosProxy proxy(chaos);
    std::string error;
    ASSERT_TRUE(proxy.start(&error)) << error;
    std::atomic<bool> stop{false};
    std::thread proxy_thread([&] { proxy.run(stop); });

    auto channel = gn::Channel::connect("127.0.0.1", proxy.port(), &error);
    ASSERT_NE(channel, nullptr) << error;
    gn::Channel::ReconnectConfig rc;
    rc.max_attempts = 5;
    rc.base_delay_ms = 2;
    rc.jitter_seed = 7;
    channel->set_reconnect(rc);

    ASSERT_TRUE(channel->execute_line("attach s").ok());
    EXPECT_EQ(channel->session(), "s");

    // This request's frame is half-delivered to the server, then the
    // connection is cut under us: the channel must redial, re-attach,
    // and answer as if nothing happened.
    gp::Response resumed = channel->execute_line("query signal led");
    EXPECT_TRUE(resumed.ok()) << resumed.message;
    (void)channel->drain_event_lines();
    EXPECT_EQ(channel->reconnects(), 1u);
    EXPECT_GT(channel->reconnect_time_us(), 0);
    EXPECT_EQ(channel->session(), "s") << "session not re-attached after redial";
    EXPECT_TRUE(channel->execute_line("query signal led").ok());
    (void)channel->drain_event_lines();

    EXPECT_EQ(proxy.stats().torn, 1u);
    stop.store(true);
    proxy_thread.join();
    srv.join();
    // The half frame the server received must not have counted as a
    // client offence (it was a clean EOF after a torn prefix).
    EXPECT_EQ(srv.server->stats().protocol_errors, 0u);
}

TEST(ChaosCampaign, TenPercentFaultsZeroHubCrashesZeroUnclassified) {
    gc::ChaosCampaignConfig cfg;
    cfg.clients = 10;
    cfg.rounds = 4;
    cfg.seed = 5;
    cfg.fault_rate = 0.10;
    const gc::ChaosReport report = gc::run_chaos_campaign(cfg);

    EXPECT_EQ(report.unclassified(), 0);
    EXPECT_TRUE(report.hub_alive);
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(static_cast<int>(report.clients.size()), cfg.clients);
    EXPECT_GT(report.proxy_stats.chunks, 0u);
    EXPECT_EQ(report.server_stats.refused, 0u);
    // The report renders without tripping anything.
    EXPECT_FALSE(report.summary_lines().empty());
}

// ---- bounded rings ----------------------------------------------------------

TEST(BoundedRings, DivergenceLogEvictsOldestAndCounts) {
    gmdf::core::DivergenceLog log;
    log.set_capacity(3);
    for (int i = 0; i < 8; ++i) {
        gmdf::core::Divergence d;
        d.t = i * gr::kMs;
        d.message = "d" + std::to_string(i);
        log.on_divergence(d);
    }
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 5u);
    EXPECT_EQ(log.divergences().front().message, "d5");
    EXPECT_EQ(log.divergences().back().message, "d7");
    log.clear();
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(BoundedRings, TimelineJournalEvictsAndSurfacesInQueryStats) {
    auto scenario = gp::make_scenario("blinker");
    ASSERT_NE(scenario, nullptr);
    scenario->timeline->set_journal_capacity(4);

    // Consecutive runs coalesce into one open journal entry, so
    // interleave control ops — each pause/resume journals separately.
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(scenario->controller().execute_line("run 10").ok());
        ASSERT_TRUE(scenario->controller().execute_line("pause").ok());
        ASSERT_TRUE(scenario->controller().execute_line("resume").ok());
    }
    ASSERT_GT(scenario->timeline->journal_dropped(), 0u);

    gp::Response stats = scenario->controller().execute_line("query stats");
    ASSERT_TRUE(stats.ok());
    bool surfaced = false;
    for (const std::string& line : stats.body)
        surfaced = surfaced || line.find("journal-ring dropped") != std::string::npos;
    EXPECT_TRUE(surfaced) << "journal drops invisible in query stats";

    // The bounded journal still replays what it kept: a rewind to the
    // most recent checkpoint must succeed.
    EXPECT_TRUE(scenario->controller().execute_line("checkpoint now").ok());
    EXPECT_TRUE(scenario->controller().execute_line("run 10").ok());
    EXPECT_TRUE(scenario->controller().execute_line("rewind 80").ok());
}

} // namespace
