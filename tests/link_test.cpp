// Unit tests for the communication substrate: command codec, framing,
// JTAG TAP controller, probe, and the watch poller.
#include <gtest/gtest.h>

#include <random>

#include "link/commands.hpp"
#include "link/framing.hpp"
#include "link/jtag.hpp"
#include "link/watch.hpp"

namespace gl = gmdf::link;
namespace rt = gmdf::rt;

namespace {

TEST(Commands, EncodeDecodeRoundTrip) {
    gl::Command cmd{gl::Cmd::StateEnter, 42, 99, 3.5f};
    auto payload = gl::encode_command(cmd);
    EXPECT_EQ(payload.size(), gl::kCommandPayloadSize);
    auto decoded = gl::decode_command(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, cmd);
}

TEST(Commands, RejectsBadSizeAndKind) {
    std::vector<std::uint8_t> short_payload(5, 0);
    EXPECT_FALSE(gl::decode_command(short_payload).has_value());
    auto payload = gl::encode_command({gl::Cmd::Hello, 1, 2, 0.0f});
    payload[0] = 0xEE; // invalid kind
    EXPECT_FALSE(gl::decode_command(payload).has_value());
}

TEST(Commands, ToStringNames) {
    EXPECT_STREQ(gl::to_string(gl::Cmd::Transition), "TRANSITION");
    gl::Command cmd{gl::Cmd::SignalUpdate, 7, 0, 1.5f};
    EXPECT_NE(cmd.to_string().find("SIGNAL_UPDATE"), std::string::npos);
}

TEST(Framing, Crc16KnownVector) {
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    std::vector<std::uint8_t> data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(gl::crc16_ccitt(data), 0x29B1);
}

TEST(Framing, RoundTripSimple) {
    std::vector<std::uint8_t> payload{1, 2, 3, 0x7E, 0x7D, 4};
    auto wire = gl::frame_payload(payload);
    gl::FrameDecoder dec;
    dec.feed(wire);
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], payload);
    EXPECT_EQ(dec.corrupt_frames(), 0u);
}

TEST(Framing, ByteAtATime) {
    std::vector<std::uint8_t> payload{0x7E, 0x7E, 0x7D, 0x00, 0xFF};
    auto wire = gl::frame_payload(payload);
    gl::FrameDecoder dec;
    for (std::uint8_t b : wire) dec.feed({&b, 1});
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], payload);
}

TEST(Framing, BackToBackFrames) {
    std::vector<std::uint8_t> p1{1, 2, 3}, p2{4, 5};
    auto w1 = gl::frame_payload(p1);
    auto w2 = gl::frame_payload(p2);
    w1.insert(w1.end(), w2.begin(), w2.end());
    gl::FrameDecoder dec;
    dec.feed(w1);
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], p1);
    EXPECT_EQ(got[1], p2);
}

TEST(Framing, JunkBeforeFrameSkipped) {
    std::vector<std::uint8_t> payload{9, 8, 7};
    std::vector<std::uint8_t> wire{0x00, 0x55, 0xAA};
    auto frame = gl::frame_payload(payload);
    wire.insert(wire.end(), frame.begin(), frame.end());
    gl::FrameDecoder dec;
    dec.feed(wire);
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(dec.junk_bytes(), 3u);
}

TEST(Framing, CorruptCrcDropped) {
    std::vector<std::uint8_t> payload{1, 2, 3, 4};
    auto wire = gl::frame_payload(payload);
    wire[2] ^= 0x01; // flip a payload bit
    gl::FrameDecoder dec;
    dec.feed(wire);
    EXPECT_TRUE(dec.take_payloads().empty());
    EXPECT_EQ(dec.corrupt_frames(), 1u);
}

TEST(Framing, RecoversAfterCorruption) {
    std::vector<std::uint8_t> p1{1, 2}, p2{3, 4};
    auto w1 = gl::frame_payload(p1);
    w1[1] ^= 0xFF;
    auto w2 = gl::frame_payload(p2);
    gl::FrameDecoder dec;
    dec.feed(w1);
    dec.feed(w2);
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], p2);
}

// Property: random payloads of random lengths round-trip through
// frame/decode even when concatenated.
class FramingFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(FramingFuzz, RandomPayloadsRoundTrip) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> len_dist(1, 64);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 50; ++i) {
        std::vector<std::uint8_t> p(static_cast<std::size_t>(len_dist(rng)));
        for (auto& b : p) b = static_cast<std::uint8_t>(byte_dist(rng));
        auto f = gl::frame_payload(p);
        wire.insert(wire.end(), f.begin(), f.end());
        payloads.push_back(std::move(p));
    }
    gl::FrameDecoder dec;
    // Feed in randomly sized chunks.
    std::size_t pos = 0;
    while (pos < wire.size()) {
        std::size_t n = std::min<std::size_t>(static_cast<std::size_t>(len_dist(rng)),
                                              wire.size() - pos);
        dec.feed({wire.data() + pos, n});
        pos += n;
    }
    auto got = dec.take_payloads();
    ASSERT_EQ(got.size(), payloads.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], payloads[i]);
    EXPECT_EQ(dec.corrupt_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingFuzz, ::testing::Values(1u, 2u, 3u, 42u, 1234u));

// --- JTAG -------------------------------------------------------------------

TEST(Tap, ResetFromAnyStateWithFiveTmsOnes) {
    // Walk the TAP into every reachable state, then check the reset property.
    rt::MemoryMap mem;
    for (int walk = 0; walk < 64; ++walk) {
        gl::JtagTap tap(mem);
        // Pseudo-random walk.
        unsigned bits = static_cast<unsigned>(walk * 2654435761u);
        for (int i = 0; i < 12; ++i) tap.clock((bits >> i) & 1, false);
        for (int i = 0; i < 5; ++i) tap.clock(true, false);
        EXPECT_EQ(tap.state(), gl::TapState::TestLogicReset);
    }
}

TEST(Tap, StateDiagramSpotChecks) {
    using S = gl::TapState;
    EXPECT_EQ(gl::tap_next(S::TestLogicReset, false), S::RunTestIdle);
    EXPECT_EQ(gl::tap_next(S::RunTestIdle, true), S::SelectDrScan);
    EXPECT_EQ(gl::tap_next(S::SelectDrScan, false), S::CaptureDr);
    EXPECT_EQ(gl::tap_next(S::ShiftDr, false), S::ShiftDr);
    EXPECT_EQ(gl::tap_next(S::Exit1Dr, true), S::UpdateDr);
    EXPECT_EQ(gl::tap_next(S::Exit2Dr, false), S::ShiftDr);
    EXPECT_EQ(gl::tap_next(S::SelectIrScan, true), S::TestLogicReset);
    EXPECT_EQ(gl::tap_next(S::UpdateIr, false), S::RunTestIdle);
}

TEST(Probe, ReadsIdcode) {
    rt::MemoryMap mem;
    gl::JtagTap tap(mem, 0x1234ABCD);
    gl::JtagProbe probe(tap);
    probe.reset();
    EXPECT_EQ(probe.read_idcode(), 0x1234ABCDu);
}

TEST(Probe, MemoryReadIsPassiveAndCorrect) {
    rt::MemoryMap mem;
    auto a = mem.alloc("x");
    auto b = mem.alloc("y");
    mem.write_u32(a, 0xCAFEBABE);
    mem.write_u32(b, 0x12345678);
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap);
    probe.reset();
    EXPECT_EQ(probe.read_word(a), 0xCAFEBABEu);
    EXPECT_EQ(probe.read_word(b), 0x12345678u);
    // Reads must not disturb memory.
    EXPECT_EQ(mem.read_u32(a), 0xCAFEBABEu);
    EXPECT_EQ(mem.read_u32(b), 0x12345678u);
}

TEST(Probe, MemoryWriteWorks) {
    rt::MemoryMap mem;
    auto a = mem.alloc("x");
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap);
    probe.reset();
    probe.write_word(a, 0xDEAD0001);
    EXPECT_EQ(mem.read_u32(a), 0xDEAD0001u);
}

TEST(Probe, UnmappedReadReturnsZero) {
    rt::MemoryMap mem;
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap);
    probe.reset();
    EXPECT_EQ(probe.read_word(0x0000'0000), 0u);
}

TEST(Probe, TckAccounting) {
    rt::MemoryMap mem;
    mem.alloc("x");
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap, 1e6); // 1 MHz TCK
    probe.reset();
    auto cycles = probe.cycles_per_read();
    EXPECT_GT(cycles, 50u);  // two IR loads + two DR scans
    EXPECT_LT(cycles, 200u);
    EXPECT_GT(probe.elapsed_seconds(), 0.0);
}

// --- Watch poller -----------------------------------------------------------

TEST(Watch, DetectsChange) {
    rt::Simulator sim;
    rt::MemoryMap mem;
    auto addr = mem.alloc("state");
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap, 1e6);
    gl::WatchPoller poller(sim, probe, rt::kMs);
    poller.watch(addr);
    std::vector<gl::WatchEvent> events;
    poller.set_callback([&](const gl::WatchEvent& e) { events.push_back(e); });
    poller.start();

    sim.at(5 * rt::kMs + 1, [&] { mem.write_u32(addr, 3); });
    sim.run_until(10 * rt::kMs);
    poller.stop();
    sim.run_until(20 * rt::kMs);

    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].addr, addr);
    EXPECT_EQ(events[0].old_value, 0u);
    EXPECT_EQ(events[0].new_value, 3u);
    // Detected at the next poll after the change (6 ms round).
    EXPECT_GE(events[0].at, 6 * rt::kMs);
    EXPECT_LT(events[0].at, 7 * rt::kMs);
}

TEST(Watch, FirstPollPrimesWithoutEvent) {
    rt::Simulator sim;
    rt::MemoryMap mem;
    auto addr = mem.alloc("v");
    mem.write_u32(addr, 77); // non-zero before the first poll
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap, 1e6);
    gl::WatchPoller poller(sim, probe, rt::kMs);
    poller.watch(addr);
    int events = 0;
    poller.set_callback([&](const gl::WatchEvent&) { ++events; });
    poller.start();
    sim.run_until(5 * rt::kMs);
    EXPECT_EQ(events, 0);
    EXPECT_GE(poller.polls(), 4u);
}

TEST(Watch, AliasingMissesFastToggles) {
    rt::Simulator sim;
    rt::MemoryMap mem;
    auto addr = mem.alloc("v");
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap, 1e6);
    gl::WatchPoller poller(sim, probe, 10 * rt::kMs); // slow poll
    poller.watch(addr);
    int events = 0;
    poller.set_callback([&](const gl::WatchEvent&) { ++events; });
    poller.start();
    // Value pulses 0 -> 5 -> 0 entirely between two polls: invisible.
    sim.at(12 * rt::kMs, [&] { mem.write_u32(addr, 5); });
    sim.at(13 * rt::kMs, [&] { mem.write_u32(addr, 0); });
    sim.run_until(50 * rt::kMs);
    EXPECT_EQ(events, 0);
}

TEST(Watch, RoundCostGrowsWithWatchList) {
    rt::Simulator sim;
    rt::MemoryMap mem;
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 8; ++i) addrs.push_back(mem.alloc("v" + std::to_string(i)));
    gl::JtagTap tap(mem);
    gl::JtagProbe probe(tap, 1e6);
    gl::WatchPoller poller(sim, probe, rt::kMs);
    for (auto a : addrs) poller.watch(a);
    poller.start();
    sim.run_until(2 * rt::kMs);
    // 8 reads x ~100 TCK @ 1 MHz ~= 800 us per round.
    EXPECT_GT(poller.round_cost(), 400 * rt::kUs);
    EXPECT_LT(poller.round_cost(), 2 * rt::kMs);
}

} // namespace
