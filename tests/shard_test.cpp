// Tests for the sharded fleet pump: the per-session determinism
// contract (a session's transcript and event stream are identical at 1
// thread and N threads), full-duration fairness across shards, work
// stealing off overloaded shards, the `session stats shards` hub verb,
// and campaign report equality at any thread count.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "comdes/build.hpp"
#include "core/builder.hpp"
#include "core/session.hpp"
#include "hub/controller.hpp"
#include "hub/registry.hpp"
#include "hub/sharded.hpp"
#include "proto/script.hpp"

namespace gca = gmdf::campaign;
namespace gco = gmdf::core;
namespace gh = gmdf::hub;
namespace gl = gmdf::link;
namespace gp = gmdf::proto;
namespace rt = gmdf::rt;

namespace {

// A hand-built scenario driven by a ScriptedTransport: `count` signal
// updates spaced `spacing` apart, starting at `spacing` (same helper as
// hub_test, target is only a clock source).
std::unique_ptr<gp::Scenario> scripted_scenario(const std::string& name, int count,
                                                rt::SimTime spacing) {
    auto scenario = std::make_unique<gp::Scenario>(name);
    auto& sys = scenario->sys;
    auto sig = sys.add_signal("x", "real_");
    auto actor = sys.add_actor("act", 10'000);
    auto sm = actor.add_sm("machine", {"go"}, {"out"});
    sm.add_state("idle", {{"out", "0"}});
    auto transport = std::make_unique<gl::ScriptedTransport>();
    for (int i = 1; i <= count; ++i)
        transport->push({gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(sig.raw), 0,
                         static_cast<float>(i)},
                        i * spacing);
    scenario->session = std::make_unique<gco::DebugSession>(sys.model());
    scenario->session->attach(std::move(transport));
    return scenario;
}

std::string run_script_on_hub(gh::HubController& hub, const std::string& script_name) {
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/" + script_name);
    EXPECT_TRUE(script) << "missing examples/" << script_name;
    std::ostringstream out;
    auto result = gp::run_script(hub, script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);
    return out.str();
}

// Splits a transcript into the per-session event streams (lines tagged
// "[name] ...") and everything else (response lines, in script order).
// Cross-session interleaving is the one thing a sharded pump may
// legitimately change, so equality is asserted per stream.
std::map<std::string, std::vector<std::string>> split_streams(const std::string& text) {
    std::map<std::string, std::vector<std::string>> streams;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        std::string key; // "" = untagged (responses, script echo)
        if (!line.empty() && line.front() == '[') {
            auto end = line.find(']');
            if (end != std::string::npos) key = line.substr(1, end - 1);
        }
        streams[key].push_back(line);
    }
    return streams;
}

// ---- determinism contract ---------------------------------------------------

TEST(Determinism, SingleSessionTranscriptMatchesPollSchedulerGolden) {
    // threads=4 on a one-session hub must still produce the exact
    // PollScheduler bytes (the quickstart golden is recorded against a
    // bare single-threaded SessionController).
    gh::HubController hub;
    hub.scheduler().set_threads(4);
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    const std::string out = run_script_on_hub(hub, "quickstart.gds");

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/quickstart_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/quickstart_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out, golden.str());
}

TEST(Determinism, PerSessionEventStreamsIdenticalAcrossThreadCounts) {
    // The fleet script runs two breakpointed sessions concurrently.
    // Response lines and each session's own event stream must be
    // byte-identical at 1 and 4 threads; only the cross-session merge
    // order may move.
    std::string outs[2];
    const int threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        gh::HubController hub;
        hub.scheduler().set_threads(threads[i]);
        ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
        outs[i] = run_script_on_hub(hub, "fleet.gds");
    }
    auto serial = split_streams(outs[0]);
    auto sharded = split_streams(outs[1]);
    ASSERT_EQ(serial.size(), sharded.size());
    for (const auto& [key, lines] : serial) {
        ASSERT_TRUE(sharded.contains(key)) << "stream '" << key << "' vanished";
        EXPECT_EQ(sharded.at(key), lines)
            << "stream '" << key << "' changed under a sharded pump";
    }
}

// ---- fairness and stealing --------------------------------------------------

TEST(Sharding, EverySessionConsumesTheFullDuration) {
    gh::SessionRegistry registry;
    for (int i = 0; i < 16; ++i)
        ASSERT_NE(registry.adopt(scripted_scenario("s", 4, 20 * rt::kMs),
                                 "s" + std::to_string(i)),
                  nullptr);
    gh::ShardedScheduler scheduler;
    scheduler.set_threads(4);
    scheduler.pump(registry, 100 * rt::kMs);

    ASSERT_EQ(scheduler.stats().size(), 16u);
    for (const auto& [id, s] : scheduler.stats()) {
        EXPECT_EQ(s.advanced, 100 * rt::kMs) << "session " << id << " shortchanged";
        EXPECT_EQ(s.slices, 10u); // 100 ms / 10 ms default budget
    }
    EXPECT_EQ(scheduler.total_slices(), 160u);

    // The deal covered all four shards and dealt the whole fleet.
    int dealt = 0;
    std::uint64_t sliced = 0;
    for (const auto& shard : scheduler.shard_stats()) {
        dealt += shard.sessions;
        sliced += shard.slices;
        EXPECT_EQ(shard.sessions, 4);
    }
    EXPECT_EQ(dealt, 16);
    EXPECT_EQ(sliced, 160u);
}

TEST(Sharding, IdleWorkersStealFromOverloadedShards) {
    // Sessions 0,4,8,12 all land on shard 0 under a 4-way deal; make
    // exactly those four expensive (a dense command flood) and the rest
    // trivial, so shards 1-3 run dry while shard 0 still has queued
    // work — which idle workers must then steal.
    gh::SessionRegistry registry;
    for (int i = 0; i < 16; ++i) {
        const bool heavy = i % 4 == 0;
        auto scenario = heavy ? scripted_scenario("h", 20000, 10 * rt::kUs)
                              : scripted_scenario("l", 2, 50 * rt::kMs);
        ASSERT_NE(registry.adopt(std::move(scenario), "s" + std::to_string(i)),
                  nullptr);
    }
    gh::ShardedScheduler scheduler;
    scheduler.set_threads(4);
    scheduler.pump(registry, 200 * rt::kMs);

    for (const auto& [id, s] : scheduler.stats())
        EXPECT_EQ(s.advanced, 200 * rt::kMs) << "session " << id;
    EXPECT_GE(scheduler.total_steals(), 1u)
        << "idle shards never relieved the overloaded one";
}

TEST(Sharding, ThreadsClampAndBudgetValidation) {
    gh::ShardedScheduler scheduler;
    scheduler.set_threads(0);
    EXPECT_EQ(scheduler.threads(), 1);
    scheduler.set_threads(100000);
    EXPECT_EQ(scheduler.threads(), 256);
    EXPECT_EQ(scheduler.shard_stats().size(), 256u);
    EXPECT_THROW(scheduler.set_budget(0), std::invalid_argument);
    EXPECT_THROW(scheduler.set_budget(-1), std::invalid_argument);
}

// ---- hub verb ---------------------------------------------------------------

TEST(HubVerb, SessionStatsShardsIsBadStateWhenSingleThreaded) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    auto resp = hub.execute_line("session stats shards");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadState);
    EXPECT_NE(resp.message.find("--threads"), std::string::npos);
}

TEST(HubVerb, SessionStatsShardsReportsTheSplit) {
    gh::HubController hub;
    hub.scheduler().set_threads(2);
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    ASSERT_TRUE(hub.execute_line("run 50").ok());

    auto resp = hub.execute_line("session stats shards");
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp.body.size(), 4u); // header, 2 shard rows, steals total
    EXPECT_EQ(resp.body[0], "shards 2 (budget 10 ms)");
    EXPECT_NE(resp.body[1].find("shard 0: sessions 1"), std::string::npos);
    EXPECT_NE(resp.body[2].find("shard 1: sessions 1"), std::string::npos);
    EXPECT_NE(resp.body[3].find("steals-total"), std::string::npos);
}

// ---- campaign ---------------------------------------------------------------

TEST(Campaign, ReportIdenticalAtAnyThreadCount) {
    gca::CampaignConfig serial_cfg;
    serial_cfg.pairs = 20;
    serial_cfg.seed = 5;
    gca::CampaignConfig sharded_cfg = serial_cfg;
    sharded_cfg.threads = 4;

    const gca::CampaignReport serial = gca::run_campaign(serial_cfg);
    const gca::CampaignReport sharded = gca::run_campaign(sharded_cfg);

    EXPECT_EQ(serial.summary_lines(), sharded.summary_lines());
    ASSERT_EQ(serial.pairs.size(), sharded.pairs.size());
    for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
        const auto& a = serial.pairs[i];
        const auto& b = sharded.pairs[i];
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.model_seed, b.model_seed);
        EXPECT_EQ(a.outcome, b.outcome) << "pair " << a.index;
        EXPECT_EQ(a.method, b.method) << "pair " << a.index;
        EXPECT_EQ(a.step, b.step) << "pair " << a.index;
        EXPECT_EQ(a.t, b.t) << "pair " << a.index;
        EXPECT_EQ(a.detail, b.detail) << "pair " << a.index;
    }
}

} // namespace
