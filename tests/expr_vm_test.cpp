// Tests for the expression bytecode compiler + VM (expr/compile, expr/vm).
//
// The centerpiece is a differential fuzz test: random ASTs evaluated by
// compile+run must match the reference tree-walk interpreter bit for bit
// — on results (kind AND bit pattern, so Int/Real promotion and -0.0/NaN
// survive) and on error classification (div-by-zero, unknown variable,
// bad call), with the VM reporting result codes where the interpreter
// throws. Plus unit cases for constant folding, slot resolution, the
// short-circuit trap rule, and the unboxed double fast path.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <map>
#include <random>

#include "expr/compile.hpp"
#include "expr/eval.hpp"
#include "expr/parser.hpp"

namespace ge = gmdf::expr;
using gmdf::meta::Value;

namespace {

// ---- AST construction helpers ----------------------------------------------

ge::ExprPtr node(auto&& n) {
    auto e = std::make_unique<ge::Expr>();
    e->node = std::forward<decltype(n)>(n);
    return e;
}

ge::ExprPtr lit(std::int64_t v) { return node(ge::IntLit{v}); }
ge::ExprPtr lit(double v) { return node(ge::RealLit{v}); }
ge::ExprPtr lit(bool v) { return node(ge::BoolLit{v}); }
ge::ExprPtr var(std::string name) { return node(ge::VarRef{std::move(name)}); }

// ---- reference outcome ------------------------------------------------------

struct Outcome {
    ge::VmStatus status = ge::VmStatus::Ok;
    Value value;
};

/// Maps the interpreter's EvalError messages onto VM result codes.
ge::VmStatus classify(const std::string& message) {
    if (message.find("by zero") != std::string::npos) return ge::VmStatus::DivByZero;
    if (message.find("unknown variable") != std::string::npos)
        return ge::VmStatus::UnknownVar;
    if (message.find("unknown function") != std::string::npos ||
        message.find("expects") != std::string::npos)
        return ge::VmStatus::BadCall;
    return ge::VmStatus::TypeError;
}

Outcome reference(const ge::Expr& e, const std::map<std::string, Value>& env) {
    try {
        return {ge::VmStatus::Ok, ge::eval(e, env)};
    } catch (const ge::EvalError& ex) {
        return {classify(ex.what()), Value()};
    }
}

/// Exact (bitwise for reals) equality between an interpreter Value and a
/// VM value.
bool same_value(const Value& a, const ge::VmValue& b) {
    if (a.is_bool()) return b.is_bool() && a.as_bool() == b.b;
    if (a.is_int()) return b.is_int() && a.as_int() == b.i;
    if (a.is_real())
        return b.is_real() && std::bit_cast<std::uint64_t>(a.as_real()) ==
                                  std::bit_cast<std::uint64_t>(b.d);
    return false;
}

std::string describe(const ge::VmValue& v) {
    if (v.is_bool()) return v.b ? "bool true" : "bool false";
    if (v.is_int()) return "int " + std::to_string(v.i);
    return "real " + std::to_string(v.d);
}

// ---- random AST generator ---------------------------------------------------

const std::vector<std::string>& slot_names() {
    static const std::vector<std::string> names{"x", "y", "z", "b"};
    return names;
}

class AstGen {
public:
    explicit AstGen(std::uint32_t seed) : rng_(seed) {}

    ge::ExprPtr gen(int depth) {
        if (depth <= 0 || pick(4) == 0) return leaf();
        switch (pick(8)) {
        case 0: case 1: case 2: { // binary
            auto op = static_cast<ge::BinOp>(pick(13));
            return node(ge::Binary{op, gen(depth - 1), gen(depth - 1)});
        }
        case 3: { // unary
            auto op = pick(2) == 0 ? ge::UnOp::Neg : ge::UnOp::Not;
            return node(ge::Unary{op, gen(depth - 1)});
        }
        case 4: { // conditional
            ge::Conditional c{gen(depth - 1), gen(depth - 1), gen(depth - 1)};
            return node(std::move(c));
        }
        default: return call(depth);
        }
    }

    /// A random environment over the slot variables (plus nothing else,
    /// so the occasional "mystery" VarRef is unknown to both engines).
    std::map<std::string, Value> env() {
        std::map<std::string, Value> out;
        for (const auto& name : slot_names()) out[name] = value();
        return out;
    }

    std::map<std::string, Value> real_env() {
        std::map<std::string, Value> out;
        for (const auto& name : slot_names()) out[name] = Value(real());
        return out;
    }

private:
    int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

    // Integer literals stay small so Int-Int multiplication chains cannot
    // overflow int64 (signed overflow is UB in both engines).
    std::int64_t small_int() { return pick(7) - 3; }

    double real() {
        static const double pool[] = {0.0, 1.0, -1.0, 0.5, -2.5, 3.25, 40.0, 1e9};
        return pool[pick(8)];
    }

    Value value() {
        switch (pick(3)) {
        case 0: return Value(small_int());
        case 1: return Value(real());
        default: return Value(pick(2) == 0);
        }
    }

    ge::ExprPtr leaf() {
        switch (pick(8)) {
        case 0: case 1: return lit(small_int());
        case 2: return lit(real());
        case 3: return lit(pick(2) == 0);
        case 4: return var("mystery"); // unknown everywhere
        default: return var(slot_names()[static_cast<std::size_t>(pick(4))]);
        }
    }

    ge::ExprPtr call(int depth) {
        struct Fn { const char* name; int arity; };
        static const Fn fns[] = {{"min", 2}, {"max", 2}, {"abs", 1},  {"clamp", 3},
                                 {"floor", 1}, {"ceil", 1}, {"sqrt", 1}, {"sin", 1},
                                 {"cos", 1}, {"exp", 1}, {"log", 1}, {"pow", 2},
                                 {"sign", 1}};
        Fn fn = fns[pick(13)];
        int arity = fn.arity;
        std::string name = fn.name;
        if (pick(20) == 0) name = "nosuchfn";        // unknown function
        else if (pick(20) == 0) arity = arity % 3 + 1; // wrong arity sometimes
        ge::Call c{std::move(name), {}};
        for (int i = 0; i < arity; ++i) c.args.push_back(gen(depth - 1));
        return node(std::move(c));
    }

    std::mt19937 rng_;
};

// ---- differential fuzz ------------------------------------------------------

TEST(VmDifferential, RandomAstsMatchInterpreterBitForBit) {
    AstGen gen(20260728);
    int faults_seen = 0;
    for (int round = 0; round < 1500; ++round) {
        ge::ExprPtr ast = gen.gen(5);
        ge::CompiledExpr ce = ge::compile(*ast, slot_names());
        for (int trial = 0; trial < 3; ++trial) {
            auto env = gen.env();
            Outcome want = reference(*ast, env);
            ge::VmValue slots[4];
            for (std::size_t i = 0; i < 4; ++i) {
                const Value& v = env.at(slot_names()[i]);
                slots[i] = v.is_bool()  ? ge::VmValue::of_bool(v.as_bool())
                           : v.is_int() ? ge::VmValue::of_int(v.as_int())
                                        : ge::VmValue::of_real(v.as_real());
            }
            ge::VmValue got;
            ge::VmStatus st = ce.run(slots, got);
            ASSERT_EQ(st, want.status)
                << ge::to_string(*ast) << "\n" << ce.disassemble();
            if (st != ge::VmStatus::Ok) {
                ++faults_seen;
                continue;
            }
            ASSERT_TRUE(same_value(want.value, got))
                << ge::to_string(*ast) << "\n= " << want.value.to_string() << " vs "
                << describe(got) << "\n" << ce.disassemble();
        }
    }
    // The generator must actually exercise the error paths.
    EXPECT_GT(faults_seen, 50);
}

TEST(VmDifferential, DoublePathMatchesInterpreterOnRealSlots) {
    AstGen gen(424242);
    int fast = 0;
    for (int round = 0; round < 1500; ++round) {
        ge::ExprPtr ast = gen.gen(5);
        ge::CompiledExpr ce = ge::compile(*ast, slot_names());
        if (ce.numeric_fast_path()) ++fast;
        auto env = gen.real_env();
        double slots[4];
        for (std::size_t i = 0; i < 4; ++i) slots[i] = env.at(slot_names()[i]).as_real();
        Outcome want = reference(*ast, env);
        double got = 0.0;
        ge::VmStatus st = ce.run(std::span<const double>(slots, 4), got);
        ASSERT_EQ(st, want.status) << ge::to_string(*ast) << "\n" << ce.disassemble();
        if (st != ge::VmStatus::Ok) continue;
        double expect = want.value.as_number();
        ASSERT_EQ(std::bit_cast<std::uint64_t>(expect), std::bit_cast<std::uint64_t>(got))
            << ge::to_string(*ast) << "\n= " << expect << " vs " << got
            << (ce.numeric_fast_path() ? " (fast path)" : " (tagged fallback)") << "\n"
            << ce.disassemble();
    }
    // The analysis must put a healthy share of programs on the fast path.
    EXPECT_GT(fast, 300);
}

// ---- constant folding -------------------------------------------------------

TEST(VmFolding, PureLiteralTreesFoldToOneConstant) {
    auto ce = ge::compile("1 + 2 * 3", {});
    EXPECT_TRUE(ce.is_constant());
    EXPECT_EQ(ce.code().size(), 2u); // PushConst + Ret
    ge::VmValue out;
    ASSERT_EQ(ce.run(std::span<const ge::VmValue>{}, out), ge::VmStatus::Ok);
    EXPECT_TRUE(out.is_int());
    EXPECT_EQ(out.i, 7);
}

TEST(VmFolding, BuiltinsAndConditionalsFold) {
    EXPECT_TRUE(ge::compile("min(2, 3) + max(1.5, 0)", {}).is_constant());
    EXPECT_TRUE(ge::compile("1 < 2 ? 10 : 20", {}).is_constant());
    EXPECT_TRUE(ge::compile("sqrt(pow(3, 2))", {}).is_constant());
}

TEST(VmFolding, ShortCircuitFoldsSkipUnknowns) {
    // The interpreter never evaluates the dead side, so neither may we.
    auto ce = ge::compile("false && missing", {});
    EXPECT_TRUE(ce.is_constant());
    ge::VmValue out;
    ASSERT_EQ(ce.run(std::span<const ge::VmValue>{}, out), ge::VmStatus::Ok);
    EXPECT_TRUE(out.is_bool());
    EXPECT_FALSE(out.b);

    EXPECT_TRUE(ge::compile("true || missing", {}).is_constant());
    // Constant condition: only the taken branch is compiled.
    EXPECT_TRUE(ge::compile("2 > 1 ? 5 : missing", {}).is_constant());
}

TEST(VmFolding, FaultingFoldsStayRuntimeFaults) {
    auto ce = ge::compile("1 / 0", {});
    EXPECT_FALSE(ce.is_constant());
    ge::VmValue out;
    EXPECT_EQ(ce.run(std::span<const ge::VmValue>{}, out), ge::VmStatus::DivByZero);
    EXPECT_EQ(ge::compile("7 % 0", {}).run(std::span<const ge::VmValue>{}, out),
              ge::VmStatus::DivByZero);
}

TEST(VmFolding, PartialFoldingInsideVariableExpressions) {
    std::vector<std::string> slots{"x"};
    auto ce = ge::compile("x + 2 * 3", slots);
    // The folded 6 plus load, add, ret.
    EXPECT_EQ(ce.code().size(), 4u);
    double out;
    ASSERT_EQ(ce.run(std::span<const double>(std::vector<double>{4.0}), out),
              ge::VmStatus::Ok);
    EXPECT_DOUBLE_EQ(out, 10.0);
}

// ---- slots, traps, fast path ------------------------------------------------

TEST(VmSlots, VariablesResolveToSlotIndices) {
    std::vector<std::string> slots{"speed", "on"};
    auto ce = ge::compile("on && speed > 40", slots);
    EXPECT_EQ(ce.slot_count(), 2u);
    double out;
    double vals[] = {42.0, 1.0};
    ASSERT_EQ(ce.run(std::span<const double>(vals), out), ge::VmStatus::Ok);
    EXPECT_EQ(out, 1.0);
    vals[1] = 0.0;
    ASSERT_EQ(ce.run(std::span<const double>(vals), out), ge::VmStatus::Ok);
    EXPECT_EQ(out, 0.0);
}

TEST(VmSlots, ShortSlotSpanIsATypeError) {
    std::vector<std::string> slots{"x", "y"};
    auto ce = ge::compile("x + y", slots);
    double one = 1.0;
    double out;
    EXPECT_EQ(ce.run(std::span<const double>(&one, 1), out), ge::VmStatus::TypeError);
}

TEST(VmTraps, UnknownVariableOnlyFaultsWhenReached) {
    std::vector<std::string> slots{"x"};
    auto ce = ge::compile("x > 0 && missing", slots);
    double out;
    double neg = -1.0, pos = 1.0;
    // Short-circuited: the trap instruction is never reached.
    ASSERT_EQ(ce.run(std::span<const double>(&neg, 1), out), ge::VmStatus::Ok);
    EXPECT_EQ(out, 0.0);
    EXPECT_EQ(ce.run(std::span<const double>(&pos, 1), out), ge::VmStatus::UnknownVar);
}

TEST(VmTraps, BadCallsEvaluateArgumentsFirst) {
    std::vector<std::string> slots{"x"};
    // The interpreter evaluates arguments before resolving the call, so
    // the argument's div-by-zero wins over the unknown function.
    auto ce = ge::compile("nosuchfn(1 / 0)", slots);
    double out;
    double v = 1.0;
    EXPECT_EQ(ce.run(std::span<const double>(&v, 1), out), ge::VmStatus::DivByZero);
    auto ce2 = ge::compile("min(x)", slots);
    EXPECT_EQ(ce2.run(std::span<const double>(&v, 1), out), ge::VmStatus::BadCall);
}

TEST(VmFastPath, TypicalGuardsRunUnboxed) {
    std::vector<std::string> slots{"pv", "sp"};
    EXPECT_TRUE(ge::compile("sp - pv > 0.5", slots).numeric_fast_path());
    EXPECT_TRUE(ge::compile("clamp(2.0 * (sp - pv), -1.0, 1.0)", slots).numeric_fast_path());
    EXPECT_TRUE(ge::compile("pv % 2 == 0", slots).numeric_fast_path());
    // Unknown variables and possible Int/Int division must stay tagged.
    EXPECT_FALSE(ge::compile("pv > 0 && missing", slots).numeric_fast_path());
    EXPECT_FALSE(ge::compile("sign(pv) / 2", slots).numeric_fast_path());
}

TEST(VmFastPath, IntSemanticsSurviveTheDoubleApi) {
    std::vector<std::string> slots{"x"};
    // sign(x) / 2 is Int/Int division: 1 / 2 == 0, not 0.5 — the double
    // API must fall back to the tagged loop to preserve that.
    auto ce = ge::compile("sign(x) / 2", slots);
    double out;
    double v = 5.0;
    ASSERT_EQ(ce.run(std::span<const double>(&v, 1), out), ge::VmStatus::Ok);
    EXPECT_EQ(out, 0.0);
}

TEST(VmFastPath, BothTiersAgreeOnGuardSweep) {
    std::vector<std::string> slots{"x", "y"};
    const char* exprs[] = {"x > y", "x % 2 == 0", "x > 0 && y > 0",
                           "abs(x - y) <= 1", "min(x, y) == y",
                           "x * x + y * y < 25"};
    for (const char* src : exprs) {
        auto ce = ge::compile(src, slots);
        for (double x = -3; x <= 3; ++x) {
            for (double y = -3; y <= 3; ++y) {
                double vals[] = {x, y};
                double via_double;
                ge::VmValue tagged_slots[2] = {ge::VmValue::of_real(x),
                                               ge::VmValue::of_real(y)};
                ge::VmValue via_tagged;
                ASSERT_EQ(ce.run(std::span<const double>(vals), via_double),
                          ge::VmStatus::Ok);
                ASSERT_EQ(ce.run(tagged_slots, via_tagged), ge::VmStatus::Ok);
                EXPECT_EQ(via_double, via_tagged.as_number()) << src;
            }
        }
    }
}

} // namespace
