// Unit tests for the metamodeling core: values, metamodels, models,
// validation, and serialization round-trips.
#include <gtest/gtest.h>

#include "meta/metamodel.hpp"
#include "meta/model.hpp"
#include "meta/serialize.hpp"
#include "meta/validate.hpp"

namespace gm = gmdf::meta;

namespace {

// A small state-machine-flavoured metamodel used across the tests.
struct Fixture {
    gm::Metamodel mm{"fsm"};
    const gm::MetaEnum* kind;
    gm::MetaClass* element;
    gm::MetaClass* machine;
    gm::MetaClass* state;
    gm::MetaClass* transition;

    Fixture() {
        kind = &mm.add_enum("StateKind", {"initial", "normal", "final"});
        element = &mm.add_class("Element", /*is_abstract=*/true);
        mm.add_attribute(*element, gm::attr_string("name", /*required=*/true));

        state = &mm.add_class("State", false, element);
        mm.add_attribute(*state, gm::attr_enum("kind", *kind, true, gm::Value("normal")));
        mm.add_attribute(*state, gm::attr_int("entry_count", false, gm::Value(0)));

        transition = &mm.add_class("Transition", false, element);
        mm.add_reference(*transition, gm::ref_plain("from", *state, 1, 1));
        mm.add_reference(*transition, gm::ref_plain("to", *state, 1, 1));
        mm.add_attribute(*transition, gm::attr_string("event"));
        mm.add_attribute(*transition, gm::attr_real("weight"));
        mm.add_attribute(*transition, gm::attr_bool("enabled", false, gm::Value(true)));

        machine = &mm.add_class("Machine", false, element);
        mm.add_reference(*machine, gm::ref_contain("states", *state, 1, -1));
        mm.add_reference(*machine, gm::ref_contain("transitions", *transition));
        mm.add_reference(*machine, gm::ref_plain("initial", *state, 1, 1));
    }

    // Builds a valid two-state machine (off -> on -> off).
    gm::Model blinker() const {
        gm::Model m(mm);
        auto& off = m.create(*state);
        off.set_attr("name", gm::Value("off"));
        off.set_attr("kind", gm::Value("initial"));
        auto& on = m.create(*state);
        on.set_attr("name", gm::Value("on"));
        auto& t1 = m.create(*transition);
        t1.set_attr("name", gm::Value("t_on"));
        t1.set_attr("event", gm::Value("tick"));
        t1.set_ref("from", off.id());
        t1.set_ref("to", on.id());
        auto& t2 = m.create(*transition);
        t2.set_attr("name", gm::Value("t_off"));
        t2.set_attr("event", gm::Value("tick"));
        t2.set_ref("from", on.id());
        t2.set_ref("to", off.id());
        auto& mach = m.create(*machine);
        mach.set_attr("name", gm::Value("blinker"));
        mach.add_ref("states", off.id());
        mach.add_ref("states", on.id());
        mach.add_ref("transitions", t1.id());
        mach.add_ref("transitions", t2.id());
        mach.set_ref("initial", off.id());
        return m;
    }
};

TEST(Value, KindsAndAccessors) {
    EXPECT_TRUE(gm::Value().is_null());
    EXPECT_TRUE(gm::Value(true).as_bool());
    EXPECT_EQ(gm::Value(42).as_int(), 42);
    EXPECT_DOUBLE_EQ(gm::Value(2.5).as_real(), 2.5);
    EXPECT_EQ(gm::Value("hi").as_string(), "hi");
    gm::Value::List l{gm::Value(1), gm::Value(2)};
    EXPECT_EQ(gm::Value(l).as_list().size(), 2u);
}

TEST(Value, NumberCoercion) {
    EXPECT_DOUBLE_EQ(gm::Value(3).as_number(), 3.0);
    EXPECT_DOUBLE_EQ(gm::Value(3.5).as_number(), 3.5);
    EXPECT_THROW((void)gm::Value("x").as_number(), std::bad_variant_access);
}

TEST(Value, ToStringCanonicalForms) {
    EXPECT_EQ(gm::Value().to_string(), "null");
    EXPECT_EQ(gm::Value(true).to_string(), "true");
    EXPECT_EQ(gm::Value(-7).to_string(), "-7");
    EXPECT_EQ(gm::Value("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    // Real literals always stay distinguishable from ints.
    EXPECT_NE(gm::Value(2.0).to_string().find('.'), std::string::npos);
}

TEST(Value, Equality) {
    EXPECT_EQ(gm::Value(1), gm::Value(1));
    EXPECT_NE(gm::Value(1), gm::Value(1.0));
    EXPECT_NE(gm::Value(), gm::Value(false));
}

TEST(MetaEnum, Literals) {
    gm::MetaEnum e("E", {"a", "b"});
    EXPECT_TRUE(e.contains("a"));
    EXPECT_FALSE(e.contains("c"));
    EXPECT_EQ(e.index_of("b"), 1u);
}

TEST(Metamodel, DuplicateClassRejected) {
    gm::Metamodel mm("m");
    mm.add_class("A");
    EXPECT_THROW(mm.add_class("A"), std::invalid_argument);
}

TEST(Metamodel, DuplicateFeatureRejected) {
    gm::Metamodel mm("m");
    auto& a = mm.add_class("A");
    mm.add_attribute(a, gm::attr_int("x"));
    EXPECT_THROW(mm.add_attribute(a, gm::attr_int("x")), std::invalid_argument);
    EXPECT_THROW(mm.add_reference(a, gm::ref_plain("x", a)), std::invalid_argument);
}

TEST(Metamodel, InheritedFeatureLookup) {
    Fixture f;
    EXPECT_NE(f.state->find_attribute("name"), nullptr);
    EXPECT_EQ(f.state->find_attribute("nope"), nullptr);
    EXPECT_TRUE(f.state->is_subtype_of(*f.element));
    EXPECT_FALSE(f.element->is_subtype_of(*f.state));
    // all_attributes lists supers first.
    auto attrs = f.state->all_attributes();
    ASSERT_EQ(attrs.size(), 3u);
    EXPECT_EQ(attrs[0]->name, "name");
}

TEST(Metamodel, ForeignSuperclassRejected) {
    gm::Metamodel m1("m1"), m2("m2");
    auto& base = m1.add_class("Base");
    EXPECT_THROW(m2.add_class("Derived", false, &base), std::invalid_argument);
}

TEST(Model, CreateAppliesDefaults) {
    Fixture f;
    gm::Model m(f.mm);
    auto& s = m.create(*f.state);
    EXPECT_EQ(s.attr("kind").as_string(), "normal");
    EXPECT_EQ(s.attr("entry_count").as_int(), 0);
    EXPECT_TRUE(s.attr("name").is_null());
}

TEST(Model, AbstractClassRejected) {
    Fixture f;
    gm::Model m(f.mm);
    EXPECT_THROW(m.create(*f.element), std::invalid_argument);
}

TEST(Model, UnknownFeatureThrows) {
    Fixture f;
    gm::Model m(f.mm);
    auto& s = m.create(*f.state);
    EXPECT_THROW(s.set_attr("bogus", gm::Value(1)), std::invalid_argument);
    EXPECT_THROW((void)s.attr("bogus"), std::invalid_argument);
    EXPECT_THROW(s.add_ref("bogus", s.id()), std::invalid_argument);
}

TEST(Model, AttrKindMismatchThrows) {
    Fixture f;
    gm::Model m(f.mm);
    auto& s = m.create(*f.state);
    EXPECT_THROW(s.set_attr("entry_count", gm::Value("nope")), std::invalid_argument);
}

TEST(Model, IntPromotedIntoRealAttr) {
    Fixture f;
    gm::Model m(f.mm);
    auto& t = m.create(*f.transition);
    t.set_attr("weight", gm::Value(2));
    EXPECT_TRUE(t.attr("weight").is_real());
    EXPECT_DOUBLE_EQ(t.attr("weight").as_real(), 2.0);
}

TEST(Model, RefManipulation) {
    Fixture f;
    gm::Model m(f.mm);
    auto& a = m.create(*f.state);
    auto& b = m.create(*f.state);
    auto& t = m.create(*f.transition);
    t.set_ref("from", a.id());
    EXPECT_EQ(t.ref("from"), a.id());
    t.set_ref("from", b.id());
    ASSERT_EQ(t.refs("from").size(), 1u);
    EXPECT_EQ(t.ref("from"), b.id());
    EXPECT_EQ(t.remove_ref("from", b.id()), 1u);
    EXPECT_TRUE(t.ref("from").is_null());
}

TEST(Model, DestroyAndLookup) {
    Fixture f;
    gm::Model m(f.mm);
    auto id = m.create(*f.state).id();
    EXPECT_NE(m.get(id), nullptr);
    EXPECT_TRUE(m.destroy(id));
    EXPECT_EQ(m.get(id), nullptr);
    EXPECT_FALSE(m.destroy(id));
    EXPECT_THROW((void)m.at(id), std::out_of_range);
}

TEST(Model, AllOfIncludesSubclasses) {
    Fixture f;
    gm::Model m = f.blinker();
    EXPECT_EQ(m.all_of(*f.state).size(), 2u);
    EXPECT_EQ(m.all_of(*f.element).size(), 5u);
}

TEST(Model, FindNamed) {
    Fixture f;
    gm::Model m = f.blinker();
    const gm::MObject* off = m.find_named(*f.state, "off");
    ASSERT_NE(off, nullptr);
    EXPECT_EQ(off->attr("kind").as_string(), "initial");
    EXPECT_EQ(m.find_named(*f.state, "zzz"), nullptr);
}

TEST(Model, RootsAndContainer) {
    Fixture f;
    gm::Model m = f.blinker();
    auto roots = m.roots();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0]->name(), "blinker");
    const gm::MObject* off = m.find_named(*f.state, "off");
    const gm::MObject* owner = m.container_of(off->id());
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->name(), "blinker");
}

TEST(Validate, CleanModel) {
    Fixture f;
    gm::Model m = f.blinker();
    auto ds = gm::validate(m);
    EXPECT_TRUE(gm::is_clean(ds)) << (ds.empty() ? "" : ds[0].to_string());
}

TEST(Validate, MissingRequiredAttribute) {
    Fixture f;
    gm::Model m(f.mm);
    m.create(*f.state); // no name
    auto ds = gm::validate(m);
    ASSERT_FALSE(gm::is_clean(ds));
    EXPECT_NE(ds[0].to_string().find("required"), std::string::npos);
}

TEST(Validate, BadEnumLiteral) {
    Fixture f;
    gm::Model m(f.mm);
    auto& s = m.create(*f.state);
    s.set_attr("name", gm::Value("s"));
    s.set_attr("kind", gm::Value("bogus"));
    EXPECT_FALSE(gm::is_clean(gm::validate(m)));
}

TEST(Validate, DanglingReference) {
    Fixture f;
    gm::Model m = f.blinker();
    const gm::MObject* off = m.find_named(*f.state, "off");
    auto off_id = off->id();
    m.destroy(off_id);
    auto ds = gm::validate(m);
    EXPECT_FALSE(gm::is_clean(ds));
    bool found = false;
    for (const auto& d : ds)
        if (d.to_string().find("dangling") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

TEST(Validate, MultiplicityLowerBound) {
    Fixture f;
    gm::Model m(f.mm);
    auto& t = m.create(*f.transition);
    t.set_attr("name", gm::Value("t"));
    auto ds = gm::validate(m); // from/to have lower bound 1
    int errors = 0;
    for (const auto& d : ds)
        if (d.severity == gm::Severity::Error) ++errors;
    EXPECT_GE(errors, 2);
}

TEST(Validate, MultiplicityUpperBound) {
    Fixture f;
    gm::Model m = f.blinker();
    gm::MObject* mach = m.all_of(*f.machine)[0];
    const gm::MObject* on = m.find_named(*f.state, "on");
    mach->add_ref("initial", on->id()); // now 2 > upper bound 1
    EXPECT_FALSE(gm::is_clean(gm::validate(m)));
}

TEST(Validate, DoubleContainmentReported) {
    Fixture f;
    gm::Model m = f.blinker();
    auto machines = m.all_of(*f.machine);
    auto& mach2 = m.create(*f.machine);
    mach2.set_attr("name", gm::Value("m2"));
    const gm::MObject* off = m.find_named(*f.state, "off");
    mach2.add_ref("states", off->id());
    mach2.set_ref("initial", off->id());
    (void)machines;
    auto ds = gm::validate(m);
    bool found = false;
    for (const auto& d : ds)
        if (d.to_string().find("contained by both") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

TEST(Validate, TypeMismatchedReference) {
    Fixture f;
    gm::Model m(f.mm);
    auto& t = m.create(*f.transition);
    t.set_attr("name", gm::Value("t"));
    auto& t2 = m.create(*f.transition);
    t2.set_attr("name", gm::Value("t2"));
    t.set_ref("from", t2.id()); // Transition is not a State
    t.set_ref("to", t2.id());
    EXPECT_FALSE(gm::is_clean(gm::validate(m)));
}

TEST(Serialize, RoundTripStable) {
    Fixture f;
    gm::Model m = f.blinker();
    std::string first = gm::write_model(m);
    gm::Model m2 = gm::read_model(f.mm, first);
    std::string second = gm::write_model(m2);
    EXPECT_EQ(first, second);
    EXPECT_EQ(m2.size(), m.size());
    EXPECT_TRUE(gm::is_clean(gm::validate(m2)));
}

TEST(Serialize, StringEscapesSurvive) {
    Fixture f;
    gm::Model m(f.mm);
    auto& s = m.create(*f.state);
    s.set_attr("name", gm::Value("we\"ird\n\tname\\"));
    std::string text = gm::write_model(m);
    gm::Model m2 = gm::read_model(f.mm, text);
    EXPECT_EQ(m2.all_of(*f.state)[0]->attr("name").as_string(), "we\"ird\n\tname\\");
}

TEST(Serialize, UnknownClassFails) {
    Fixture f;
    EXPECT_THROW((void)gm::read_model(f.mm, "model fsm\nobject @1 Nope\n"), gm::ParseError);
}

TEST(Serialize, WrongMetamodelNameFails) {
    Fixture f;
    EXPECT_THROW((void)gm::read_model(f.mm, "model other\n"), gm::ParseError);
}

TEST(Serialize, UndefinedRefTargetFails) {
    Fixture f;
    std::string text = "model fsm\n"
                       "object @1 Transition\n"
                       "  attr name = \"t\"\n"
                       "  ref from = @99\n";
    EXPECT_THROW((void)gm::read_model(f.mm, text), gm::ParseError);
}

TEST(Serialize, ParseErrorCarriesLine) {
    Fixture f;
    try {
        (void)gm::read_model(f.mm, "model fsm\ngarbage here\n");
        FAIL() << "expected ParseError";
    } catch (const gm::ParseError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

TEST(Serialize, EmptyModel) {
    Fixture f;
    gm::Model m(f.mm);
    gm::Model m2 = gm::read_model(f.mm, gm::write_model(m));
    EXPECT_EQ(m2.size(), 0u);
}

// Property: serialization round-trips for machines of any size.
class SerializeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSweep, RoundTripNStates) {
    Fixture f;
    gm::Model m(f.mm);
    int n = GetParam();
    std::vector<gm::ObjectId> states;
    for (int i = 0; i < n; ++i) {
        auto& s = m.create(*f.state);
        s.set_attr("name", gm::Value("s" + std::to_string(i)));
        s.set_attr("kind", gm::Value(i == 0 ? "initial" : "normal"));
        s.set_attr("entry_count", gm::Value(i * i));
        states.push_back(s.id());
    }
    auto& mach = m.create(*f.machine);
    mach.set_attr("name", gm::Value("ring"));
    for (int i = 0; i < n; ++i) {
        mach.add_ref("states", states[static_cast<std::size_t>(i)]);
        auto& t = m.create(*f.transition);
        t.set_attr("name", gm::Value("t" + std::to_string(i)));
        t.set_ref("from", states[static_cast<std::size_t>(i)]);
        t.set_ref("to", states[static_cast<std::size_t>((i + 1) % n)]);
        mach.add_ref("transitions", t.id());
    }
    mach.set_ref("initial", states[0]);

    std::string first = gm::write_model(m);
    gm::Model m2 = gm::read_model(f.mm, first);
    EXPECT_EQ(gm::write_model(m2), first);
    EXPECT_TRUE(gm::is_clean(gm::validate(m2)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializeSweep, ::testing::Values(1, 2, 5, 17, 64));

} // namespace
