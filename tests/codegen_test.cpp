// Tests for model transformation: flattening, the loader (instrumented
// execution on the simulated target), the C emitter (including a golden
// compile-and-compare against the interpreter), and fault injection.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "codegen/cemit.hpp"
#include "codegen/faults.hpp"
#include "codegen/flatten.hpp"
#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "link/framing.hpp"

namespace gc = gmdf::comdes;
namespace gg = gmdf::codegen;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace rt = gmdf::rt;

namespace {

// --- Flattening ---------------------------------------------------------------

TEST(Flatten, GainChain) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto g1 = a.add_basic("g1", "gain_", {2.0});
    auto g2 = a.add_basic("g2", "gain_", {3.0});
    a.connect(g1, "out", g2, "in");
    std::vector<gg::ExtBinding> ins{{"g1", "in", 0}};
    std::vector<gg::ExtBinding> outs{{"g2", "out", 0}};
    auto prog = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), ins, outs,
                                    nullptr);
    double in = 5.0, out = 0.0;
    prog.run({&in, 1}, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 30.0);
}

TEST(Flatten, UnconnectedInputReadsZero) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    a.add_basic("sum", "add_"); // both inputs unconnected
    std::vector<gg::ExtBinding> outs{{"sum", "out", 0}};
    auto prog = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), {}, outs,
                                    nullptr);
    double out = -1.0;
    prog.run({}, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(Flatten, DelayFeedbackAccumulator) {
    // out = delay(out) + in  — classic accumulator via delay-broken cycle.
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto sum = a.add_basic("sum", "add_");
    auto d = a.add_basic("d", "delay_", {1.0});
    a.connect(sum, "out", d, "in");
    a.connect(d, "out", sum, "in2");
    std::vector<gg::ExtBinding> ins{{"sum", "in1", 0}};
    std::vector<gg::ExtBinding> outs{{"sum", "out", 0}};
    auto prog = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), ins, outs,
                                    nullptr);
    double in = 1.0, out = 0.0;
    for (int i = 1; i <= 5; ++i) {
        prog.run({&in, 1}, {&out, 1}, 0.001);
        EXPECT_DOUBLE_EQ(out, i);
    }
}

TEST(Flatten, CombinationalCycleThrows) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto g1 = a.add_basic("g1", "gain_", {1.0});
    auto g2 = a.add_basic("g2", "gain_", {1.0});
    a.connect(g1, "out", g2, "in");
    a.connect(g2, "out", g1, "in");
    EXPECT_THROW((void)gg::flatten_network(sys.model(), sys.model().at(a.network_id()), {},
                                           {}, nullptr),
                 std::invalid_argument);
}

TEST(Flatten, CompositeEncapsulates) {
    // Composite "scale2": inner gain of 2, mapped in/out.
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    const auto& c = gc::comdes_metamodel();
    auto& comp = sys.model().create(*c.composite_fb);
    comp.set_attr("name", gm::Value("scale2"));
    auto& inner_net = sys.model().create(*c.network);
    comp.set_ref("network", inner_net.id());
    auto& inner_gain = sys.model().create(*c.basic_fb);
    inner_gain.set_attr("name", gm::Value("g"));
    inner_gain.set_attr("kind", gm::Value("gain_"));
    inner_gain.set_attr("params", gm::Value(gm::Value::List{gm::Value(2.0)}));
    inner_net.add_ref("blocks", inner_gain.id());
    auto add_map = [&](const char* outer, const char* fb, const char* pin, const char* dir) {
        auto& pm = sys.model().create(*c.port_map);
        pm.set_attr("outer_pin", gm::Value(outer));
        pm.set_attr("inner_fb", gm::Value(fb));
        pm.set_attr("inner_pin", gm::Value(pin));
        pm.set_attr("direction", gm::Value(dir));
        comp.add_ref("port_maps", pm.id());
    };
    add_map("x", "g", "in", "in");
    add_map("y", "g", "out", "out");
    sys.model().at(a.network_id()).add_ref("blocks", comp.id());

    std::vector<gg::ExtBinding> ins{{"scale2", "x", 0}};
    std::vector<gg::ExtBinding> outs{{"scale2", "y", 0}};
    auto prog = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), ins, outs,
                                    nullptr);
    double in = 7.0, out = 0.0;
    prog.run({&in, 1}, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 14.0);
}

struct ModeObserver : gg::ProgramObserver {
    std::vector<gm::ObjectId> modes;
    void on_state_enter(gm::ObjectId, gm::ObjectId) override {}
    void on_transition(gm::ObjectId, gm::ObjectId) override {}
    void on_mode_change(gm::ObjectId, gm::ObjectId mode) override { modes.push_back(mode); }
};

// Builds a modal FB with two modes: mode 0 passes through, mode 1 doubles.
struct ModalFixture {
    gc::SystemBuilder sys{"s"};
    gm::ObjectId network;
    gm::ObjectId mode0, mode1;

    ModalFixture() {
        auto a = sys.add_actor("a", 1000);
        network = a.network_id();
        const auto& c = gc::comdes_metamodel();
        auto& modal = sys.model().create(*c.modal_fb);
        modal.set_attr("name", gm::Value("ctl"));
        modal.set_attr("selector_pin", gm::Value("mode"));
        auto make_mode = [&](const char* name, std::int64_t value, double gain) {
            auto& mode = sys.model().create(*c.mode);
            mode.set_attr("name", gm::Value(name));
            mode.set_attr("value", gm::Value(value));
            auto& net = sys.model().create(*c.network);
            mode.set_ref("network", net.id());
            auto& g = sys.model().create(*c.basic_fb);
            g.set_attr("name", gm::Value("g"));
            g.set_attr("kind", gm::Value("gain_"));
            g.set_attr("params", gm::Value(gm::Value::List{gm::Value(gain)}));
            net.add_ref("blocks", g.id());
            auto add_map = [&](const char* outer, const char* pin, const char* dir) {
                auto& pm = sys.model().create(*c.port_map);
                pm.set_attr("outer_pin", gm::Value(outer));
                pm.set_attr("inner_fb", gm::Value("g"));
                pm.set_attr("inner_pin", gm::Value(pin));
                pm.set_attr("direction", gm::Value(dir));
                mode.add_ref("port_maps", pm.id());
            };
            add_map("x", "in", "in");
            add_map("y", "out", "out");
            modal.add_ref("modes", mode.id());
            return mode.id();
        };
        mode0 = make_mode("pass", 0, 1.0);
        mode1 = make_mode("boost", 1, 2.0);
        sys.model().at(network).add_ref("blocks", modal.id());
    }
};

TEST(Flatten, ModalSwitchesAndHolds) {
    ModalFixture f;
    ModeObserver obs;
    std::vector<gg::ExtBinding> ins{{"ctl", "mode", 0}, {"ctl", "x", 1}};
    std::vector<gg::ExtBinding> outs{{"ctl", "y", 0}};
    auto prog =
        gg::flatten_network(f.sys.model(), f.sys.model().at(f.network), ins, outs, &obs);

    std::array<double, 2> in{0.0, 5.0};
    double out = 0.0;
    prog.run(in, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 5.0); // pass-through mode
    in = {1.0, 5.0};
    prog.run(in, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 10.0); // boost mode
    in = {9.0, 100.0};           // unknown selector: outputs hold
    prog.run(in, {&out, 1}, 0.001);
    EXPECT_DOUBLE_EQ(out, 10.0);
    ASSERT_EQ(obs.modes.size(), 2u);
    EXPECT_EQ(obs.modes[0], f.mode0);
    EXPECT_EQ(obs.modes[1], f.mode1);
}

TEST(Flatten, StaticCostPositiveAndMonotonic) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto g1 = a.add_basic("g1", "gain_", {1.0});
    (void)g1;
    auto small = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), {}, {},
                                     nullptr);
    a.add_basic("pid", "pid_", {1, 1, 0, -10, 10});
    auto bigger = gg::flatten_network(sys.model(), sys.model().at(a.network_id()), {}, {},
                                      nullptr);
    EXPECT_GT(gg::static_cost(small), 0u);
    EXPECT_GT(gg::static_cost(bigger), gg::static_cost(small));
}

// --- Loader / instrumented execution -------------------------------------------

// Blinker system: a periodic SM toggles `led` every `ticks` scans using a
// counter input driven by a constant.
struct BlinkerFixture {
    gc::SystemBuilder sys{"blink_sys"};
    gm::ObjectId led, sm_id, s_off, s_on;

    BlinkerFixture() {
        led = sys.add_signal("led", "bool_");
        auto a = sys.add_actor("blinker", 10'000); // 10 ms period
        auto smb = a.add_sm("toggler", {"tick"}, {"out"});
        s_off = smb.add_state("off", {{"out", "0"}});
        s_on = smb.add_state("on", {{"out", "1"}});
        smb.add_transition(s_off, s_on, "tick");
        smb.add_transition(s_on, s_off, "tick");
        sm_id = smb.sm_id();
        auto one = a.add_basic("one", "const_", {1.0});
        a.connect(one, "out", sm_id, "tick");
        a.bind_output(sm_id, "out", led);
        EXPECT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));
    }
};

TEST(Loader, SystemRunsAndTogglesSignal) {
    BlinkerFixture f;
    rt::Target target;
    auto loaded = gg::load_system(target, f.sys.model(), gg::InstrumentOptions::none());
    ASSERT_EQ(loaded.actors.size(), 1u);
    target.start();

    std::vector<double> observed;
    target.sim().every(15 * rt::kMs, 10 * rt::kMs, [&] {
        observed.push_back(target.node(0).signal(loaded.signal_index.at(f.led.raw)));
    });
    target.run_for(100 * rt::kMs);
    ASSERT_GE(observed.size(), 8u);
    // Toggles every scan: on, off, on, off...
    for (std::size_t i = 0; i + 1 < observed.size(); ++i)
        EXPECT_NE(observed[i], observed[i + 1]);
}

TEST(Loader, ActiveModeEmitsDecodableCommands) {
    BlinkerFixture f;
    rt::Target target;
    auto loaded = gg::load_system(target, f.sys.model(), gg::InstrumentOptions::active());
    (void)loaded;
    gl::FrameDecoder decoder;
    target.set_debug_sink([&](int, std::span<const std::uint8_t> bytes, rt::SimTime) {
        decoder.feed(bytes);
    });
    target.start();
    target.run_for(55 * rt::kMs);

    std::vector<gl::Command> cmds;
    for (const auto& p : decoder.take_payloads()) {
        auto cmd = gl::decode_command(p);
        ASSERT_TRUE(cmd.has_value());
        cmds.push_back(*cmd);
    }
    ASSERT_FALSE(cmds.empty());
    // First scan: TASK_START, STATE_ENTER(initial=off), TRANSITION,
    // STATE_ENTER(on), SIGNAL_UPDATE, TASK_END.
    EXPECT_EQ(cmds[0].kind, gl::Cmd::TaskStart);
    EXPECT_EQ(cmds[1].kind, gl::Cmd::StateEnter);
    EXPECT_EQ(cmds[1].a, static_cast<std::uint32_t>(f.sm_id.raw));
    EXPECT_EQ(cmds[1].b, static_cast<std::uint32_t>(f.s_off.raw));
    EXPECT_EQ(cmds[2].kind, gl::Cmd::Transition);
    EXPECT_EQ(cmds[3].kind, gl::Cmd::StateEnter);
    EXPECT_EQ(cmds[3].b, static_cast<std::uint32_t>(f.s_on.raw));
    bool saw_signal = false;
    for (const auto& c : cmds)
        if (c.kind == gl::Cmd::SignalUpdate) saw_signal = true;
    EXPECT_TRUE(saw_signal);
    EXPECT_GT(target.total_instr_cycles(), 0u);
}

TEST(Loader, PassiveModeMirrorsStateWithZeroInstrumentation) {
    BlinkerFixture f;
    rt::Target target;
    auto loaded = gg::load_system(target, f.sys.model(), gg::InstrumentOptions::passive());
    target.start();
    target.run_for(25 * rt::kMs);

    EXPECT_EQ(target.total_instr_cycles(), 0u);
    const auto& mem = target.node(0).memory();
    ASSERT_TRUE(mem.has_symbol("blinker.toggler_state"));
    // After two scans (off->on, on->off) the state is 'off' (index 0);
    // after one scan it is 'on' (index 1). 25ms => 2 scans completed.
    auto state = mem.read_u32(mem.address_of("blinker.toggler_state"));
    EXPECT_EQ(state, 0u);
    ASSERT_TRUE(mem.has_symbol("sig_led"));
    ASSERT_EQ(loaded.actors[0].elements.size(), 1u);
    EXPECT_EQ(loaded.actors[0].elements[0].element, f.sm_id);
}

TEST(Loader, ReleaseModeHasNoMirrorSymbols) {
    BlinkerFixture f;
    rt::Target target;
    (void)gg::load_system(target, f.sys.model(), gg::InstrumentOptions::none());
    EXPECT_FALSE(target.node(0).memory().has_symbol("sig_led"));
    EXPECT_EQ(target.node(0).memory().word_count(), 1u); // SM mirror word only
}

TEST(Loader, ActorsDistributeAcrossNodes) {
    gc::SystemBuilder sys("dist");
    auto x = sys.add_signal("x");
    auto a0 = sys.add_actor("producer", 10'000, 0, /*node=*/0);
    auto c0 = a0.add_basic("one", "const_", {42.0});
    a0.bind_output(c0, "out", x);
    auto a1 = sys.add_actor("consumer", 10'000, 0, /*node=*/1);
    auto g = a1.add_basic("g", "gain_", {1.0});
    a1.bind_input(x, g, "in");

    rt::Target target;
    auto loaded = gg::load_system(target, sys.model(), gg::InstrumentOptions::none());
    EXPECT_EQ(target.node_count(), 2u);
    target.start();
    target.run_for(50 * rt::kMs);
    // Value propagated across the network to node 1's replica.
    EXPECT_DOUBLE_EQ(target.node(1).signal(loaded.signal_index.at(x.raw)), 42.0);
}

// --- C emitter ------------------------------------------------------------------

// Runs an emitted C program against the interpreter on random inputs.
// Model: expression + PID + SM + delay (stateful, eventful).
class GoldenC : public ::testing::TestWithParam<unsigned> {};

TEST_P(GoldenC, CompiledCodeMatchesInterpreter) {
    gc::SystemBuilder sys("gold");
    auto sig_u = sys.add_signal("u");
    auto sig_v = sys.add_signal("v");
    auto sig_y = sys.add_signal("y");
    auto sig_s = sys.add_signal("s");
    auto a = sys.add_actor("ctl", 1000);
    auto e = a.add_basic("mix", "expression_", {}, "a * 0.5 + max(b, 1.0)");
    auto lp = a.add_basic("lp", "lowpass_", {0.05});
    auto smb = a.add_sm("fsm", {"go", "lvl"}, {"speed"});
    auto s0 = smb.add_state("idle", {{"speed", "0"}});
    auto s1 = smb.add_state("run", {{"speed", "lvl * 2"}});
    smb.add_transition(s0, s1, "go", "lvl > 1");
    smb.add_transition(s1, s0, "", "lvl < 0.5");
    auto gt = a.add_basic("gt", "gt_", {2.0});
    a.connect(e, "out", lp, "in");
    a.connect(e, "out", gt, "in");
    a.connect(gt, "out", smb.sm_id(), "go");
    a.bind_input(sig_u, e, "a");
    a.bind_input(sig_v, e, "b");
    a.bind_input(sig_u, smb.sm_id(), "lvl");
    a.bind_output(lp, "out", sig_y);
    a.bind_output(smb.sm_id(), "speed", sig_s);
    ASSERT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));

    const auto& model = sys.model();
    const gm::MObject* actor = model.find_named(*gc::comdes_metamodel().actor, "ctl");
    ASSERT_NE(actor, nullptr);

    gg::CEmitOptions copts;
    copts.test_main = true;
    copts.dt = 0.001;
    std::string source = gg::emit_actor_c(model, *actor, copts);

    std::string dir = ::testing::TempDir();
    std::string c_path = dir + "/gold_actor.c";
    std::string bin_path = dir + "/gold_actor_" + std::to_string(GetParam());
    {
        std::ofstream f(c_path);
        f << source;
    }
    std::string compile = "cc -O1 -w -o " + bin_path + " " + c_path + " -lm 2>&1";
    ASSERT_EQ(std::system(compile.c_str()), 0) << "generated C failed to compile:\n" << source;

    // Drive both with the same random input sequence.
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> dist(-3.0, 3.0);
    const int kScans = 200;
    std::vector<std::array<double, 3>> inputs; // u, v, u (lvl shares u)
    std::ostringstream stimulus;
    stimulus.precision(17); // round-trippable: both sides see identical values
    for (int i = 0; i < kScans; ++i) {
        double u = dist(rng), v = dist(rng);
        inputs.push_back({u, v, u});
        stimulus << u << " " << v << " " << u << "\n";
    }
    std::string stim_path = dir + "/stim_" + std::to_string(GetParam()) + ".txt";
    {
        std::ofstream f(stim_path);
        f << stimulus.str();
    }
    std::string run = bin_path + " < " + stim_path;
    FILE* pipe = popen(run.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::vector<std::array<double, 2>> c_out;
    double o1, o2;
    while (fscanf(pipe, "%lf %lf", &o1, &o2) == 2) c_out.push_back({o1, o2});
    pclose(pipe);
    ASSERT_EQ(c_out.size(), static_cast<std::size_t>(kScans));

    auto prog = gg::flatten_actor(model, *actor, nullptr);
    for (int i = 0; i < kScans; ++i) {
        std::array<double, 2> out{};
        prog.run(inputs[static_cast<std::size_t>(i)], out, 0.001);
        EXPECT_NEAR(c_out[static_cast<std::size_t>(i)][0], out[0], 1e-9)
            << "scan " << i << " output y";
        EXPECT_NEAR(c_out[static_cast<std::size_t>(i)][1], out[1], 1e-9)
            << "scan " << i << " output speed";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenC, ::testing::Values(7u, 99u));

TEST(CEmit, ContainsExpectedInterface) {
    BlinkerFixture f;
    const gm::MObject* actor =
        f.sys.model().find_named(*gc::comdes_metamodel().actor, "blinker");
    std::string src = gg::emit_actor_c(f.sys.model(), *actor);
    EXPECT_NE(src.find("blinker_state_t"), std::string::npos);
    EXPECT_NE(src.find("void blinker_init"), std::string::npos);
    EXPECT_NE(src.find("void blinker_step"), std::string::npos);
    EXPECT_NE(src.find("GMDF_EMIT"), std::string::npos);
    EXPECT_NE(src.find("volatile unsigned"), std::string::npos); // passive mirror
    EXPECT_EQ(src.find("main("), std::string::npos);             // no test main by default
}

// --- Fault injection ------------------------------------------------------------

TEST(Faults, CloneKeepsIds) {
    BlinkerFixture f;
    gm::Model copy = f.sys.model().clone();
    EXPECT_EQ(copy.size(), f.sys.model().size());
    EXPECT_EQ(copy.at(f.sm_id).name(), "toggler");
    // Deep copy: mutating the clone leaves the original intact.
    copy.at(f.sm_id).set_attr("name", gm::Value("mutated"));
    EXPECT_EQ(f.sys.model().at(f.sm_id).name(), "toggler");
}

TEST(Faults, EachKindReportsOrDeclines) {
    BlinkerFixture f;
    for (auto kind : gg::all_fault_kinds()) {
        gm::Model copy = f.sys.model().clone();
        auto report = gg::inject_fault(copy, kind, 3);
        if (kind == gg::FaultKind::NegateGuard) {
            EXPECT_FALSE(report.has_value()); // blinker has no guards
            continue;
        }
        ASSERT_TRUE(report.has_value()) << gg::to_string(kind);
        EXPECT_FALSE(report->description.empty());
    }
}

TEST(Faults, WrongInitialStateChangesFirstEntry) {
    BlinkerFixture f;
    gm::Model mutated = f.sys.model().clone();
    auto report = gg::inject_fault(mutated, gg::FaultKind::WrongInitialState, 1);
    ASSERT_TRUE(report.has_value());

    auto first_entry = [&](const gm::Model& m) {
        struct Obs : gg::ProgramObserver {
            gm::ObjectId first;
            void on_state_enter(gm::ObjectId, gm::ObjectId s) override {
                if (first.is_null()) first = s;
            }
            void on_transition(gm::ObjectId, gm::ObjectId) override {}
            void on_mode_change(gm::ObjectId, gm::ObjectId) override {}
        } obs;
        const gm::MObject* actor = m.find_named(*gc::comdes_metamodel().actor, "blinker");
        auto prog = gg::flatten_actor(m, *actor, &obs);
        double out = 0.0;
        prog.run({}, {&out, 1}, 0.001);
        return obs.first;
    };
    EXPECT_EQ(first_entry(f.sys.model()), f.s_off);
    EXPECT_EQ(first_entry(mutated), f.s_on); // fault flipped the initial state
}

TEST(Faults, NegateGuardFlipsBehaviour) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"x"}, {"y"});
    auto s0 = smb.add_state("lo", {{"y", "0"}});
    auto s1 = smb.add_state("hi", {{"y", "1"}});
    smb.add_transition(s0, s1, "", "x > 5");
    smb.add_transition(s1, s0, "", "x <= 5");

    gm::Model mutated = sys.model().clone();
    auto report = gg::inject_fault(mutated, gg::FaultKind::NegateGuard, 0);
    ASSERT_TRUE(report.has_value());

    // Drive a stimulus that exercises both transitions and record the
    // state trajectory.
    auto trajectory = [&](const gm::Model& m) {
        const gm::MObject* actor = m.find_named(*gc::comdes_metamodel().actor, "a");
        std::vector<gg::ExtBinding> ins{{"fsm", "x", 0}};
        std::vector<gg::ExtBinding> outs{{"fsm", "state", 0}};
        const gm::MObject* net = m.get(actor->ref("network"));
        auto prog = gg::flatten_network(m, *net, ins, outs, nullptr);
        std::vector<double> states;
        for (double x : {1.0, 9.0, 9.0, 1.0}) {
            double out = 0.0;
            prog.run({&x, 1}, {&out, 1}, 0.001);
            states.push_back(out);
        }
        return states;
    };
    auto original = trajectory(sys.model());
    EXPECT_EQ(original, (std::vector<double>{0, 1, 1, 0}));
    EXPECT_NE(trajectory(mutated), original);
}

TEST(Faults, DropConnectionRemovesObject) {
    BlinkerFixture f;
    gm::Model mutated = f.sys.model().clone();
    auto before = mutated.all_of(*gc::comdes_metamodel().connection).size();
    auto report = gg::inject_fault(mutated, gg::FaultKind::DropConnection, 5);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(mutated.all_of(*gc::comdes_metamodel().connection).size(), before - 1);
}

} // namespace
