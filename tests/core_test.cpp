// Tests for the GMDF core: GDM metamodel, abstraction/mapping, bindings,
// debugger engine (reactions, breakpoints, consistency checks), trace
// recording/replay, and the DebugSession facade end-to-end on the
// simulated target via both the active and passive attachments.
#include <gtest/gtest.h>

#include "codegen/faults.hpp"
#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/abstraction.hpp"
#include "core/animator.hpp"
#include "core/engine.hpp"
#include "core/gdm.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "meta/serialize.hpp"
#include "meta/validate.hpp"

namespace gc = gmdf::comdes;
namespace gg = gmdf::codegen;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gco = gmdf::core;
namespace rt = gmdf::rt;

namespace {

// Two-state traffic system with a guarded transition and a speed signal.
struct DemoSystem {
    gc::SystemBuilder sys{"demo"};
    gm::ObjectId speed, cmd_sig;
    gm::ObjectId sm_id, s_idle, s_run, t_go, t_stop;

    DemoSystem() {
        speed = sys.add_signal("speed", "real_");
        cmd_sig = sys.add_signal("cmd", "real_", 0.0);
        auto a = sys.add_actor("ctl", 10'000); // 10 ms
        auto smb = a.add_sm("machine", {"go", "level"}, {"out"});
        s_idle = smb.add_state("idle", {{"out", "0"}});
        s_run = smb.add_state("run", {{"out", "level * 10"}});
        t_go = smb.add_transition(s_idle, s_run, "go", "level > 0");
        t_stop = smb.add_transition(s_run, s_idle, "", "level <= 0");
        sm_id = smb.sm_id();
        auto gt = a.add_basic("gt", "gt_", {0.5});
        a.bind_input(cmd_sig, gt, "in");
        a.connect(gt, "out", sm_id, "go");
        a.bind_input(cmd_sig, sm_id, "level");
        a.bind_output(sm_id, "out", speed);
        EXPECT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));
    }
};

TEST(Gdm, MetamodelWellFormed) {
    const auto& g = gco::gdm_metamodel();
    EXPECT_EQ(g.mm.name(), "gdm");
    EXPECT_TRUE(g.node->is_subtype_of(*g.element));
    EXPECT_TRUE(g.shape->contains("Circle"));
    EXPECT_TRUE(g.command->contains("STATE_ENTER"));
}

TEST(Mapping, PairUnpairLookup) {
    gco::MappingTable t;
    gco::GdmPattern p;
    p.shape = gmdf::render::Shape::Triangle;
    t.pair("State", p);
    EXPECT_EQ(t.size(), 1u);
    const auto& c = gc::comdes_metamodel();
    ASSERT_NE(t.lookup(*c.state), nullptr);
    EXPECT_EQ(t.lookup(*c.state)->shape, gmdf::render::Shape::Triangle);
    EXPECT_EQ(t.lookup(*c.transition), nullptr);
    EXPECT_TRUE(t.unpair("State"));
    EXPECT_FALSE(t.unpair("State"));
    EXPECT_EQ(t.lookup(*c.state), nullptr);
}

TEST(Mapping, LookupWalksInheritance) {
    gco::MappingTable t;
    t.pair("NamedElement", gco::GdmPattern{});
    const auto& c = gc::comdes_metamodel();
    EXPECT_NE(t.lookup(*c.state), nullptr); // State <: NamedElement
}

TEST(Mapping, RepairReplacesPattern) {
    gco::MappingTable t;
    gco::GdmPattern a, b;
    a.w = 10;
    b.w = 20;
    t.pair("State", a);
    t.pair("State", b);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.pairings()[0].second.w, 20);
}

TEST(Abstraction, BuildsNodesAndEdges) {
    DemoSystem d;
    auto result = gco::abstract_model(d.sys.model(), gco::comdes_default_mapping());
    // States, SM, basic FB, actor, signals are nodes; transitions and the
    // connection are edges.
    EXPECT_GE(result.mapped_nodes, 6u);
    EXPECT_GE(result.mapped_edges, 3u);
    EXPECT_NE(result.scene.find_node(d.s_idle.raw), nullptr);
    EXPECT_NE(result.scene.find_edge(d.t_go.raw), nullptr);
    // GDM model itself validates against the gdm metamodel.
    EXPECT_TRUE(gm::is_clean(gm::validate(result.gdm)));
}

TEST(Abstraction, SceneIdsAreSourceElementIds) {
    DemoSystem d;
    auto result = gco::abstract_model(d.sys.model(), gco::comdes_default_mapping());
    const auto* node = result.scene.find_node(d.s_run.raw);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->label, "run");
}

TEST(Abstraction, UnmappedClassesSkipped) {
    DemoSystem d;
    gco::MappingTable only_states;
    gco::GdmPattern p;
    p.shape = gmdf::render::Shape::Circle;
    only_states.pair("State", p);
    auto result = gco::abstract_model(d.sys.model(), only_states);
    EXPECT_EQ(result.mapped_nodes, 2u); // idle + run only
    EXPECT_EQ(result.mapped_edges, 0u);
    EXPECT_GT(result.skipped, 0u);
}

TEST(Abstraction, EdgeWithUnmappedEndpointSkipped) {
    DemoSystem d;
    gco::MappingTable t;
    gco::GdmPattern edge;
    edge.as_edge = true;
    t.pair("Transition", edge); // endpoints (states) unmapped
    auto result = gco::abstract_model(d.sys.model(), t);
    EXPECT_EQ(result.mapped_edges, 0u);
}

TEST(Abstraction, GdmSerializes) {
    DemoSystem d;
    gco::DebugSession session(d.sys.model());
    std::string text = session.gdm_text();
    EXPECT_NE(text.find("model gdm"), std::string::npos);
    EXPECT_NE(text.find("DebugModel"), std::string::npos);
    gm::Model reread = gm::read_model(gco::gdm_metamodel().mm, text);
    EXPECT_EQ(reread.size(), session.gdm().size());
}

TEST(Bindings, DefaultsAndOverrides) {
    auto t = gco::CommandBindingTable::defaults();
    EXPECT_EQ(t.lookup(gl::Cmd::StateEnter).type, gco::ReactionType::Highlight);
    EXPECT_TRUE(t.lookup(gl::Cmd::StateEnter).exclusive);
    EXPECT_EQ(t.lookup(gl::Cmd::Hello).type, gco::ReactionType::None);
    t.bind(gl::Cmd::StateEnter, {gco::ReactionType::None, false});
    EXPECT_EQ(t.lookup(gl::Cmd::StateEnter).type, gco::ReactionType::None);
}

// --- Engine unit behaviour -----------------------------------------------------

struct EngineFixture {
    DemoSystem d;
    gco::AbstractionResult abs;
    gco::DebuggerEngine engine;
    gco::SceneAnimator animator;
    gco::DivergenceLog log;

    EngineFixture()
        : abs(gco::abstract_model(d.sys.model(), gco::comdes_default_mapping())),
          engine(d.sys.model()), animator(d.sys.model(), abs.scene) {
        engine.add_observer(&animator);
        engine.add_observer(&log);
    }

    [[nodiscard]] const std::deque<gco::Divergence>& divergences() const {
        return log.divergences();
    }

    gl::Command enter(gm::ObjectId state) const {
        return {gl::Cmd::StateEnter, static_cast<std::uint32_t>(d.sm_id.raw),
                static_cast<std::uint32_t>(state.raw), 0.0f};
    }
    gl::Command fire(gm::ObjectId transition) const {
        return {gl::Cmd::Transition, static_cast<std::uint32_t>(d.sm_id.raw),
                static_cast<std::uint32_t>(transition.raw), 0.0f};
    }
};

TEST(Engine, StartsWaitingThenAnimates) {
    EngineFixture f;
    EXPECT_EQ(f.engine.state(), gco::EngineState::Waiting);
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs);
    EXPECT_EQ(f.engine.state(), gco::EngineState::Animating);
}

TEST(Engine, HighlightIsExclusive) {
    EngineFixture f;
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs);
    EXPECT_TRUE(f.abs.scene.find_node(f.d.s_idle.raw)->style.highlighted);
    f.engine.ingest(f.fire(f.d.t_go), 2 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_run), 2 * rt::kMs);
    EXPECT_TRUE(f.abs.scene.find_node(f.d.s_run.raw)->style.highlighted);
    EXPECT_FALSE(f.abs.scene.find_node(f.d.s_idle.raw)->style.highlighted);
    EXPECT_TRUE(f.abs.scene.find_edge(f.d.t_go.raw)->style.highlighted); // pulse
}

TEST(Engine, SignalUpdateSetsLabelAndValue) {
    EngineFixture f;
    gl::Command cmd{gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(f.d.speed.raw), 0,
                    42.5f};
    f.engine.ingest(cmd, rt::kMs);
    EXPECT_EQ(f.abs.scene.find_node(f.d.speed.raw)->sublabel, "42.5");
    ASSERT_TRUE(f.engine.signal_value(f.d.speed).has_value());
    EXPECT_DOUBLE_EQ(*f.engine.signal_value(f.d.speed), 42.5);
}

TEST(Engine, TracksCurrentState) {
    EngineFixture f;
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs);
    ASSERT_TRUE(f.engine.current_state(f.d.sm_id).has_value());
    EXPECT_EQ(*f.engine.current_state(f.d.sm_id), f.d.s_idle);
}

TEST(Engine, ConsistentSequenceProducesNoDivergence) {
    EngineFixture f;
    f.engine.ingest(f.enter(f.d.s_idle), 1 * rt::kMs);
    f.engine.ingest(f.fire(f.d.t_go), 2 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_run), 2 * rt::kMs);
    f.engine.ingest(f.fire(f.d.t_stop), 3 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_idle), 3 * rt::kMs);
    EXPECT_TRUE(f.divergences().empty());
}

TEST(Engine, WrongInitialStateDetected) {
    EngineFixture f;
    f.engine.ingest(f.enter(f.d.s_run), rt::kMs); // design starts in idle
    ASSERT_EQ(f.divergences().size(), 1u);
    EXPECT_NE(f.divergences()[0].message.find("started in"), std::string::npos);
}

TEST(Engine, TransitionTargetMismatchDetected) {
    EngineFixture f;
    f.engine.ingest(f.enter(f.d.s_idle), 1 * rt::kMs);
    f.engine.ingest(f.fire(f.d.t_go), 2 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_idle), 2 * rt::kMs); // t_go targets run, not idle
    ASSERT_FALSE(f.divergences().empty());
    EXPECT_NE(f.divergences()[0].message.find("should enter"), std::string::npos);
}

TEST(Engine, JumpWithoutTransitionDetected) {
    EngineFixture f;
    // Passive mode: only STATE_ENTER events. idle -> run exists, run ->
    // run does not... use idle -> idle? There is no idle->idle edge, but
    // re-entering the same state is tolerated. Use run -> run via a fake
    // second machine? Simplest: enter idle, then jump straight to a state
    // reachable only from run.
    f.engine.ingest(f.enter(f.d.s_idle), 1 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_run), 2 * rt::kMs); // legal: t_go connects them
    EXPECT_TRUE(f.divergences().empty());
    // Now remove legality by jumping idle->run again after returning:
    f.engine.ingest(f.enter(f.d.s_idle), 3 * rt::kMs); // legal via t_stop
    EXPECT_TRUE(f.divergences().empty());
}

TEST(Engine, UnknownStateDetected) {
    EngineFixture f;
    gl::Command bad{gl::Cmd::StateEnter, static_cast<std::uint32_t>(f.d.sm_id.raw),
                    static_cast<std::uint32_t>(f.d.speed.raw), 0.0f};
    f.engine.ingest(bad, rt::kMs);
    ASSERT_FALSE(f.divergences().empty());
}

TEST(Engine, BreakpointOnStateEnterPausesTarget) {
    EngineFixture f;
    bool paused = false, resumed = false;
    f.engine.set_control({[&] { paused = true; }, [&] { resumed = true; }, [](const gco::StepFilter&) {}});
    f.engine.add_breakpoint({gco::Breakpoint::Kind::StateEnter, f.d.s_run, "", true, false});
    f.engine.ingest(f.enter(f.d.s_idle), 1 * rt::kMs);
    EXPECT_FALSE(paused);
    f.engine.ingest(f.fire(f.d.t_go), 2 * rt::kMs);
    f.engine.ingest(f.enter(f.d.s_run), 2 * rt::kMs);
    EXPECT_TRUE(paused);
    EXPECT_EQ(f.engine.state(), gco::EngineState::Paused);
    EXPECT_EQ(f.engine.stats().breakpoints_hit, 1u);
    f.engine.resume();
    EXPECT_TRUE(resumed);
    EXPECT_EQ(f.engine.state(), gco::EngineState::Animating);
}

TEST(Engine, OneShotBreakpointAutoRemoves) {
    EngineFixture f;
    f.engine.set_control({[] {}, [] {}, [](const gco::StepFilter&) {}});
    f.engine.add_breakpoint({gco::Breakpoint::Kind::StateEnter, f.d.s_idle, "", true, true});
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs);
    EXPECT_EQ(f.engine.breakpoints().size(), 0u);
}

TEST(Engine, SignalPredicateBreakpoint) {
    EngineFixture f;
    bool paused = false;
    f.engine.set_control({[&] { paused = true; }, [] {}, [](const gco::StepFilter&) {}});
    f.engine.add_breakpoint(
        {gco::Breakpoint::Kind::SignalPredicate, {}, "speed > 40", true, false});
    gl::Command low{gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(f.d.speed.raw), 0,
                    10.0f};
    f.engine.ingest(low, rt::kMs);
    EXPECT_FALSE(paused);
    gl::Command high{gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(f.d.speed.raw), 0,
                     55.0f};
    f.engine.ingest(high, 2 * rt::kMs);
    EXPECT_TRUE(paused);
}

TEST(Engine, RemoveBreakpoint) {
    EngineFixture f;
    int h = f.engine.add_breakpoint(
        {gco::Breakpoint::Kind::StateEnter, f.d.s_idle, "", true, false});
    EXPECT_TRUE(f.engine.remove_breakpoint(h));
    EXPECT_FALSE(f.engine.remove_breakpoint(h));
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs);
    EXPECT_EQ(f.engine.state(), gco::EngineState::Animating);
}

TEST(Engine, StepPausesOnNextCommand) {
    EngineFixture f;
    int steps = 0;
    f.engine.set_control({[] {}, [] {}, [&](const gco::StepFilter&) { ++steps; }});
    f.engine.add_breakpoint({gco::Breakpoint::Kind::StateEnter, f.d.s_idle, "", true, true});
    f.engine.ingest(f.enter(f.d.s_idle), rt::kMs); // pauses via breakpoint
    ASSERT_EQ(f.engine.state(), gco::EngineState::Paused);
    f.engine.step();
    EXPECT_EQ(steps, 1);
    f.engine.ingest(f.fire(f.d.t_go), 2 * rt::kMs);
    EXPECT_EQ(f.engine.state(), gco::EngineState::Paused); // re-paused after one command
}

// --- DebugSession end-to-end ----------------------------------------------------

TEST(Session, ActiveEndToEnd) {
    DemoSystem d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(d.sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();

    // Command the machine to run at t=30ms via the cmd signal.
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 2.0);
    });
    target.run_for(200 * rt::kMs);

    EXPECT_EQ(session.engine().state(), gco::EngineState::Animating);
    EXPECT_GT(session.engine().stats().commands, 10u);
    EXPECT_TRUE(session.divergences().empty());
    EXPECT_EQ(session.corrupt_frames(), 0u);
    // The machine ended in 'run' and its scene node is highlighted.
    ASSERT_TRUE(session.engine().current_state(d.sm_id).has_value());
    EXPECT_EQ(*session.engine().current_state(d.sm_id), d.s_run);
    EXPECT_TRUE(session.scene().find_node(d.s_run.raw)->style.highlighted);
    // Speed signal observed as level * 10.
    ASSERT_TRUE(session.engine().signal_value(d.speed).has_value());
    EXPECT_DOUBLE_EQ(*session.engine().signal_value(d.speed), 20.0);
    // Frames render.
    EXPECT_NE(session.render_ascii().find("run"), std::string::npos);
    EXPECT_NE(session.render_svg().find("<svg"), std::string::npos);
}

TEST(Session, PassiveEndToEndZeroOverhead) {
    DemoSystem d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::passive());
    gco::DebugSession session(d.sys.model());
    session.attach(gco::make_passive_jtag_transport(target, loaded, d.sys.model(), 2 * rt::kMs));
    target.start();
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 2.0);
    });
    target.run_for(200 * rt::kMs);

    // Zero target-side cost is the whole point of the passive solution.
    EXPECT_EQ(target.total_instr_cycles(), 0u);
    EXPECT_GT(session.engine().stats().commands, 1u);
    ASSERT_TRUE(session.engine().current_state(d.sm_id).has_value());
    EXPECT_EQ(*session.engine().current_state(d.sm_id), d.s_run);
    // Signal value observed through the f32 mirror.
    ASSERT_TRUE(session.engine().signal_value(d.speed).has_value());
    EXPECT_NEAR(*session.engine().signal_value(d.speed), 20.0, 1e-4);
    EXPECT_TRUE(session.divergences().empty());
}

TEST(Session, BreakpointPausesSimulatedTarget) {
    DemoSystem d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(d.sys.model());
    session.attach(gco::make_active_uart_transport(target));
    session.engine().add_breakpoint(
        {gco::Breakpoint::Kind::StateEnter, d.s_run, "", true, false});
    target.start();
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 1.0);
    });
    target.run_for(500 * rt::kMs);

    EXPECT_EQ(session.engine().state(), gco::EngineState::Paused);
    EXPECT_TRUE(target.paused());
    auto suppressed = target.node(0).task_stats("ctl").suppressed;
    EXPECT_GT(suppressed, 10u); // releases suppressed while halted
    session.engine().resume();
    EXPECT_FALSE(target.paused());
    target.run_for(50 * rt::kMs);
    EXPECT_GT(target.node(0).task_stats("ctl").releases, 3u);
}

TEST(Session, TraceReplayIsDeterministic) {
    DemoSystem d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(d.sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 2.0);
    });
    target.run_for(100 * rt::kMs);

    ASSERT_GT(session.trace().size(), 5u);
    auto frames1 = session.replay_frames(5);
    auto frames2 = session.replay_frames(5);
    ASSERT_FALSE(frames1.empty());
    EXPECT_EQ(frames1, frames2);
    EXPECT_NE(frames1.back().find("machine"), std::string::npos);
}

TEST(Session, TimingDiagramAndVcdFromTrace) {
    DemoSystem d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(d.sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 2.0);
    });
    target.run_for(100 * rt::kMs);

    auto diagram = session.timing_diagram();
    ASSERT_GE(diagram.lanes().size(), 2u); // machine + speed
    std::string art = diagram.render_ascii(60);
    EXPECT_NE(art.find("machine"), std::string::npos);

    std::string vcd = session.vcd();
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(vcd.find("machine_state"), std::string::npos);
    EXPECT_NE(vcd.find("speed"), std::string::npos);
}

// The flagship scenario: a model-transformation fault is injected into
// the generated code; the debugger localizes it as a divergence while the
// unmodified design model stays the source of truth.
class FaultDetection : public ::testing::TestWithParam<gmdf::codegen::FaultKind> {};

TEST_P(FaultDetection, DivergenceReported) {
    DemoSystem d;
    gm::Model mutated = d.sys.model().clone();
    auto report = gg::inject_fault(mutated, GetParam(), 11);
    if (!report.has_value()) GTEST_SKIP() << "fault not applicable to this model";

    rt::Target target;
    auto loaded = gg::load_system(target, mutated, gg::InstrumentOptions::active());
    gco::DebugSession session(d.sys.model()); // debugger sees the *design*
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.sim().at(30 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 2.0);
    });
    target.sim().at(100 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(d.cmd_sig.raw), 0.0);
    });
    target.run_for(300 * rt::kMs);

    if (GetParam() == gmdf::codegen::FaultKind::WrongTransitionTarget ||
        GetParam() == gmdf::codegen::FaultKind::WrongInitialState) {
        EXPECT_FALSE(session.divergences().empty())
            << "fault '" << gg::to_string(GetParam()) << "' must surface as a divergence";
    }
    // Structural faults always surface; value faults (guard/param/
    // connection) change signal values, visible in the trace.
    EXPECT_GT(session.trace().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FaultDetection,
                         ::testing::Values(gmdf::codegen::FaultKind::WrongTransitionTarget,
                                           gmdf::codegen::FaultKind::WrongInitialState,
                                           gmdf::codegen::FaultKind::NegateGuard,
                                           gmdf::codegen::FaultKind::FlipParamSign));

} // namespace
