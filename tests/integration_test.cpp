// Cross-module integration tests: serialization round trips through the
// full pipeline, passive debugging of modal FBs, actor-filtered stepping,
// link saturation behaviour, and instrumented C compilation.
#include <gtest/gtest.h>

#include <fstream>

#include "codegen/cemit.hpp"
#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/metamodel.hpp"
#include "comdes/validate.hpp"
#include "core/gdm.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "meta/serialize.hpp"
#include "meta/validate.hpp"

namespace gc = gmdf::comdes;
namespace gg = gmdf::codegen;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gco = gmdf::core;
namespace rt = gmdf::rt;

namespace {

// Builds a system, returns its serialized text.
std::string make_system_text() {
    gc::SystemBuilder sys("roundtrip");
    auto u = sys.add_signal("u", "real_", 0.5);
    auto y = sys.add_signal("y");
    auto a = sys.add_actor("ctl", 10'000);
    auto pid = a.add_basic("pid", "pid_", {1.0, 0.2, 0.0, -5.0, 5.0});
    auto lp = a.add_basic("lp", "lowpass_", {0.1});
    a.bind_input(u, pid, "sp");
    a.bind_input(y, pid, "pv");
    a.connect(pid, "out", lp, "in");
    a.bind_output(lp, "out", y);
    return gm::write_model(sys.model());
}

double run_and_sample(const gm::Model& model, const std::string& out_signal) {
    rt::Target target;
    auto loaded = gg::load_system(target, model, gg::InstrumentOptions::none());
    target.start();
    target.run_for(rt::kSec);
    const gm::MObject* sig =
        model.find_named(*gc::comdes_metamodel().signal, out_signal);
    return target.node(0).signal(loaded.signal_index.at(sig->id().raw));
}

TEST(Integration, SerializedModelExecutesIdentically) {
    std::string text = make_system_text();
    gm::Model m1 = gm::read_model(gc::comdes_metamodel().mm, text);
    gm::Model m2 = gm::read_model(gc::comdes_metamodel().mm, text);
    ASSERT_TRUE(gm::is_clean(gc::validate_comdes(m1)));
    EXPECT_DOUBLE_EQ(run_and_sample(m1, "y"), run_and_sample(m2, "y"));
    EXPECT_NE(run_and_sample(m1, "y"), 0.0); // the loop actually moved
}

TEST(Integration, CloneExecutesIdenticallyToOriginal) {
    std::string text = make_system_text();
    gm::Model original = gm::read_model(gc::comdes_metamodel().mm, text);
    gm::Model copy = original.clone();
    EXPECT_DOUBLE_EQ(run_and_sample(original, "y"), run_and_sample(copy, "y"));
}

// Modal FB observed passively: mode changes are synthesized as
// MODE_CHANGE commands from the RAM mirror.
TEST(Integration, PassiveModalModeChanges) {
    gc::SystemBuilder sys("modal_passive");
    auto mode_sig = sys.add_signal("mode", "int_");
    auto out_sig = sys.add_signal("out");
    auto a = sys.add_actor("ctl", 10'000);
    const auto& c = gc::comdes_metamodel();
    auto& modal = sys.model().create(*c.modal_fb);
    modal.set_attr("name", gm::Value("sel"));
    gm::ObjectId mode_ids[2];
    for (int i = 0; i < 2; ++i) {
        auto& mode = sys.model().create(*c.mode);
        mode.set_attr("name", gm::Value("m" + std::to_string(i)));
        mode.set_attr("value", gm::Value(i));
        auto& net = sys.model().create(*c.network);
        mode.set_ref("network", net.id());
        auto& k = sys.model().create(*c.basic_fb);
        k.set_attr("name", gm::Value("k"));
        k.set_attr("kind", gm::Value("const_"));
        k.set_attr("params", gm::Value(gm::Value::List{gm::Value(double(i + 1))}));
        net.add_ref("blocks", k.id());
        auto& pm = sys.model().create(*c.port_map);
        pm.set_attr("outer_pin", gm::Value("y"));
        pm.set_attr("inner_fb", gm::Value("k"));
        pm.set_attr("inner_pin", gm::Value("out"));
        pm.set_attr("direction", gm::Value("out"));
        mode.add_ref("port_maps", pm.id());
        modal.add_ref("modes", mode.id());
        mode_ids[i] = mode.id();
    }
    sys.model().at(a.network_id()).add_ref("blocks", modal.id());
    a.bind_input(mode_sig, modal.id(), "mode");
    a.bind_output(modal.id(), "y", out_sig);
    ASSERT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));

    rt::Target target;
    auto loaded = gg::load_system(target, sys.model(), gg::InstrumentOptions::passive());
    gco::DebugSession session(sys.model());
    session.attach(gco::make_passive_jtag_transport(target, loaded, sys.model(), 2 * rt::kMs));
    target.start();
    target.sim().at(50 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(mode_sig.raw), 1.0);
    });
    target.run_for(200 * rt::kMs);

    auto mode_events = session.trace().filter(gl::Cmd::ModeChange);
    ASSERT_GE(mode_events.size(), 1u);
    EXPECT_EQ(mode_events.back().cmd.b, static_cast<std::uint32_t>(mode_ids[1].raw));
    EXPECT_EQ(target.total_instr_cycles(), 0u);
    // Output followed the mode switch: const 2 in mode 1.
    EXPECT_DOUBLE_EQ(target.node(0).signal(loaded.signal_index.at(out_sig.raw)), 2.0);
}

TEST(Integration, StepFilterStepsOnlyChosenActor) {
    gc::SystemBuilder sys("stepping");
    auto a0 = sys.add_actor("fast", 5'000);
    auto g0 = a0.add_basic("g", "gain_", {1.0});
    (void)g0;
    auto a1 = sys.add_actor("slow", 20'000);
    auto g1 = a1.add_basic("g", "gain_", {1.0});
    (void)g1;

    rt::Target target;
    (void)gg::load_system(target, sys.model(), gg::InstrumentOptions::none());
    target.start();
    target.pause();
    target.run_for(100 * rt::kMs);
    auto slow_before = target.node(0).task_stats("slow").releases;
    auto fast_before = target.node(0).task_stats("fast").releases;
    target.request_single_step("slow");
    target.run_for(100 * rt::kMs);
    EXPECT_EQ(target.node(0).task_stats("slow").releases, slow_before + 1);
    EXPECT_EQ(target.node(0).task_stats("fast").releases, fast_before); // not stepped
}

TEST(Integration, ActiveLinkSaturatesGracefully) {
    // A 1 kHz task emitting every event saturates a 115200-baud UART;
    // frames must still decode cleanly (no corruption), just arrive late.
    gc::SystemBuilder sys("saturate");
    auto s = sys.add_signal("x");
    auto a = sys.add_actor("fast", 1'000);
    auto sm = a.add_sm("m", {"go"}, {"y"});
    auto s0 = sm.add_state("s0", {{"y", "0"}});
    auto s1 = sm.add_state("s1", {{"y", "1"}});
    sm.add_transition(s0, s1, "go");
    sm.add_transition(s1, s0, "go");
    auto one = a.add_basic("one", "const_", {1.0});
    a.connect(one, "out", sm.sm_id(), "go");
    a.bind_output(sm.sm_id(), "y", s);

    rt::Target target;
    (void)gg::load_system(target, sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.run_for(2 * rt::kSec);

    EXPECT_EQ(session.corrupt_frames(), 0u);
    EXPECT_TRUE(session.divergences().empty());
    // Wire-limited: ~11520 B/s over ~17 B frames is ~680 cmd/s; the 1 kHz
    // task emits ~4000 cmd/s, so far fewer arrive than were sent.
    EXPECT_LT(session.engine().stats().commands, 1700u);
    EXPECT_GT(session.engine().stats().commands, 400u);
}

TEST(Integration, InstrumentedCCompilesAndEmits) {
    gc::SystemBuilder sys("cinstr");
    auto a = sys.add_actor("ctl", 10'000);
    auto sm = a.add_sm("m", {"go"}, {"y"});
    auto s0 = sm.add_state("s0", {{"y", "0"}});
    auto s1 = sm.add_state("s1", {{"y", "1"}});
    sm.add_transition(s0, s1, "go");
    sm.add_transition(s1, s0, "go");
    auto one = a.add_basic("one", "const_", {1.0});
    a.connect(one, "out", sm.sm_id(), "go");

    const gm::MObject* actor = sys.model().find_named(*gc::comdes_metamodel().actor, "ctl");
    std::string src = gg::emit_actor_c(sys.model(), *actor);

    std::string dir = ::testing::TempDir();
    std::string c_path = dir + "/instr_actor.c";
    {
        std::ofstream f(c_path);
        f << src;
        // Harness: count gmdf_emit calls over 4 scans.
        f << "#include <stdio.h>\n"
             "static int emits = 0;\n"
             "void gmdf_emit(unsigned k, unsigned a, unsigned b, float v)\n"
             "{ (void)k;(void)a;(void)b;(void)v; ++emits; }\n"
             "int main(void) { static ctl_state_t st; ctl_init(&st);\n"
             "  double out[2];\n"
             "  for (int i = 0; i < 4; ++i) ctl_step(&st, 0, out, 0.01);\n"
             "  printf(\"%d\\n\", emits); return 0; }\n";
    }
    std::string bin = dir + "/instr_actor";
    std::string compile = "cc -O1 -w -DGMDF_INSTRUMENT -o " + bin + " " + c_path + " -lm";
    ASSERT_EQ(std::system(compile.c_str()), 0) << src;
    FILE* pipe = popen(bin.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    int emits = 0;
    ASSERT_EQ(fscanf(pipe, "%d", &emits), 1);
    pclose(pipe);
    // 4 scans: initial entry (1) + 4 transitions + 4 entries = 9.
    EXPECT_EQ(emits, 9);
}

TEST(Integration, ValidatorCatchesGuardOverNonInput) {
    gc::SystemBuilder sys("guard_check");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {"y"});
    auto s0 = sm.add_state("s0");
    sm.add_transition(s0, s0, "go", "y > 1"); // y is an output, not an input
    auto ds = gc::validate_comdes(sys.model());
    bool found = false;
    for (const auto& d : ds)
        if (d.to_string().find("not an input pin") != std::string::npos) found = true;
    EXPECT_TRUE(found);
}

TEST(Integration, WholeSystemTextPipeline) {
    // Text in -> model -> GDM text out, all through public API.
    std::string text = make_system_text();
    gm::Model model = gm::read_model(gc::comdes_metamodel().mm, text);
    gco::DebugSession session(model);
    std::string gdm_text = session.gdm_text();
    gm::Model gdm = gm::read_model(gco::gdm_metamodel().mm, gdm_text);
    EXPECT_TRUE(gm::is_clean(gm::validate(gdm)));
    EXPECT_GT(gdm.size(), 5u);
}

} // namespace
