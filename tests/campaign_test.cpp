// gmdf::campaign: the seeded model generator (determinism, validity),
// the campaign runner's per-fault-kind classification contract, the
// parameterized scenario names, the .gds extension language, and the
// golden campaign transcript.
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/generator.hpp"
#include "campaign/runner.hpp"
#include "codegen/faults.hpp"
#include "comdes/validate.hpp"
#include "hub/controller.hpp"
#include "meta/diagnostics.hpp"
#include "meta/serialize.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"
#include "replay/compare.hpp"

namespace {

namespace gc = gmdf::campaign;
namespace gp = gmdf::proto;

// ---- fault kind naming (codegen satellites) --------------------------------

TEST(FaultKinds, ToStringIsCompleteAndUnique) {
    std::set<std::string> names;
    for (auto kind : gmdf::codegen::all_fault_kinds()) {
        std::string name = gmdf::codegen::to_string(kind);
        EXPECT_NE(name, "?");
        EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    }
    EXPECT_EQ(names.size(), gmdf::codegen::all_fault_kinds().size());
}

TEST(FaultKinds, FromStringRoundTripsAndRejectsUnknown) {
    for (auto kind : gmdf::codegen::all_fault_kinds()) {
        auto back = gmdf::codegen::fault_kind_from_string(gmdf::codegen::to_string(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(gmdf::codegen::fault_kind_from_string("no-such-fault").has_value());
    EXPECT_FALSE(gmdf::codegen::fault_kind_from_string("").has_value());
}

// ---- generator --------------------------------------------------------------

TEST(Generator, SameSeedYieldsByteIdenticalModelAndStimuli) {
    gc::GenSpec spec;
    gmdf::comdes::SystemBuilder a("gen_system"), b("gen_system");
    auto ga = gc::generate_system(a, spec, 7);
    auto gb = gc::generate_system(b, spec, 7);
    EXPECT_EQ(gmdf::meta::write_model(a.model()), gmdf::meta::write_model(b.model()));
    ASSERT_EQ(ga.stimuli.size(), gb.stimuli.size());
    for (std::size_t i = 0; i < ga.stimuli.size(); ++i) {
        EXPECT_EQ(ga.stimuli[i].signal.raw, gb.stimuli[i].signal.raw);
        EXPECT_EQ(ga.stimuli[i].value, gb.stimuli[i].value);
        EXPECT_EQ(ga.stimuli[i].at, gb.stimuli[i].at);
        EXPECT_EQ(ga.stimuli[i].node, gb.stimuli[i].node);
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    gmdf::comdes::SystemBuilder a("gen_system"), b("gen_system");
    gc::generate_system(a, {}, 1);
    gc::generate_system(b, {}, 2);
    EXPECT_NE(gmdf::meta::write_model(a.model()), gmdf::meta::write_model(b.model()));
}

TEST(Generator, ValiditySweepEverySeedIsCleanAndRunnable) {
    gc::GenSpec spec;
    for (std::uint32_t seed = 1; seed <= 25; ++seed) {
        gmdf::comdes::SystemBuilder sys("gen_system");
        auto gen = gc::generate_system(sys, spec, seed);
        auto diags = gmdf::comdes::validate_comdes(sys.model());
        EXPECT_TRUE(gmdf::meta::is_clean(diags)) << "seed " << seed;
        EXPECT_EQ(gen.stimuli.size(), static_cast<std::size_t>(spec.stimuli));
    }
    // And the clean scenario path loads, runs, and stays divergence-free.
    gc::MakeResult clean = gc::make_generated_scenario(spec, 11, std::nullopt);
    ASSERT_NE(clean.scenario, nullptr);
    ASSERT_TRUE(clean.scenario->controller().execute_line("run 300").ok());
    EXPECT_TRUE(clean.scenario->session->divergences().empty());
}

// ---- parameterized scenario names ------------------------------------------

TEST(Scenarios, ParameterizedNamesParse) {
    EXPECT_NE(gp::make_scenario("gen:5"), nullptr);
    EXPECT_NE(gp::make_scenario("gen:5:wrong-initial-state"), nullptr);
    EXPECT_NE(gp::make_scenario("lift_fault:negate-guard"), nullptr);
    EXPECT_EQ(gp::make_scenario("gen:abc"), nullptr);
    EXPECT_EQ(gp::make_scenario("gen:"), nullptr);
    EXPECT_EQ(gp::make_scenario("gen:5:bogus"), nullptr);
    EXPECT_EQ(gp::make_scenario("lift_fault:bogus"), nullptr);
    // The elevator has no basic FBs: the fault has no surface.
    EXPECT_EQ(gp::make_scenario("lift_fault:flip-param-sign"), nullptr);
}

TEST(Scenarios, FaultedTwinKeepsDesignModelClean) {
    auto s = gp::make_scenario("gen:9:wrong-initial-state");
    ASSERT_NE(s, nullptr);
    ASSERT_NE(s->mutated, nullptr);
    // The debugger-side design model must be untouched by the injection.
    gmdf::comdes::SystemBuilder twin("gen:9:wrong-initial-state_system");
    gc::generate_system(twin, {}, 9);
    EXPECT_EQ(gmdf::meta::write_model(s->sys.model()),
              gmdf::meta::write_model(twin.model()));
    EXPECT_NE(gmdf::meta::write_model(*s->mutated),
              gmdf::meta::write_model(s->sys.model()));
}

// ---- campaign runner --------------------------------------------------------

TEST(Campaign, EveryPairClassifiedAndDeterministic) {
    gc::CampaignConfig cfg;
    cfg.pairs = 25;
    cfg.seed = 3;
    gc::CampaignReport a = gc::run_campaign(cfg);
    ASSERT_EQ(a.pairs.size(), 25u);
    EXPECT_EQ(a.unclassified(), 0);
    EXPECT_GT(a.localized, 0);
    for (const gc::PairResult& p : a.pairs) {
        if (p.outcome == gc::Outcome::Localized) {
            EXPECT_NE(p.method, gc::Method::None) << "pair " << p.index;
            EXPECT_FALSE(p.detail.empty()) << "pair " << p.index;
        } else {
            EXPECT_EQ(p.method, gc::Method::None) << "pair " << p.index;
        }
    }
    // Each of the 5 kinds got 5 pairs, and tallies add up.
    for (auto kind : gmdf::codegen::all_fault_kinds()) {
        const gc::KindTally& k = a.by_kind.at(kind);
        EXPECT_EQ(k.pairs, 5);
        EXPECT_EQ(k.localized + k.clean + k.skipped, k.pairs);
        EXPECT_EQ(k.bisect + k.differential, k.localized);
    }

    gc::CampaignReport b = gc::run_campaign(cfg);
    EXPECT_EQ(a.summary_lines(), b.summary_lines());
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
        EXPECT_EQ(a.pairs[i].outcome, b.pairs[i].outcome) << i;
        EXPECT_EQ(a.pairs[i].method, b.pairs[i].method) << i;
        EXPECT_EQ(a.pairs[i].step, b.pairs[i].step) << i;
    }
}

TEST(Campaign, StructuralFaultsLocalizeByBisect) {
    gc::CampaignConfig cfg;
    cfg.pairs = 10;
    cfg.seed = 1;
    gc::CampaignReport r = gc::run_campaign(cfg);
    // Wrong-initial-state always produces a divergence the bisect pins.
    const gc::KindTally& wis =
        r.by_kind.at(gmdf::codegen::FaultKind::WrongInitialState);
    EXPECT_EQ(wis.localized, wis.pairs);
    EXPECT_EQ(wis.bisect, wis.localized);
}

TEST(Campaign, GuardlessModelsSkipNegateGuard) {
    gc::CampaignConfig cfg;
    cfg.pairs = 5; // one pair per fault kind
    cfg.gen.guards = false;
    gc::CampaignReport r = gc::run_campaign(cfg);
    EXPECT_EQ(r.unclassified(), 0);
    const gc::KindTally& ng = r.by_kind.at(gmdf::codegen::FaultKind::NegateGuard);
    EXPECT_EQ(ng.skipped, ng.pairs);
    for (const gc::PairResult& p : r.pairs) {
        if (p.kind == gmdf::codegen::FaultKind::NegateGuard) {
            EXPECT_EQ(p.outcome, gc::Outcome::Skipped);
        }
    }
}

// ---- differential trace comparison -----------------------------------------

TEST(Compare, FirstTraceDifferenceFindsEarliestDisagreement) {
    using gmdf::core::TraceEvent;
    using gmdf::link::Cmd;
    using gmdf::link::Command;
    std::deque<TraceEvent> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back({i * 10, Command{Cmd::SignalUpdate, 1, 0, static_cast<float>(i)}});
    b = a;
    EXPECT_FALSE(gmdf::replay::first_trace_difference(a, b).has_value());

    b[2].cmd.value = 99.0f;
    auto diff = gmdf::replay::first_trace_difference(a, b);
    ASSERT_TRUE(diff.has_value());
    EXPECT_EQ(diff->step, 2u);

    // A shorter observed stream after a clean prefix is a difference too.
    b = a;
    b.pop_back();
    diff = gmdf::replay::first_trace_difference(a, b);
    ASSERT_TRUE(diff.has_value());
    EXPECT_EQ(diff->step, 3u);
}

// ---- .gds extension language ------------------------------------------------

/// Records executed lines; "boom" errors, "val" answers "value 7".
class FakeClient final : public gp::ScriptClient {
public:
    gp::Response execute_line(std::string_view line) override {
        lines.emplace_back(line);
        if (line == "boom")
            return gp::Response::make_error(gp::ErrorCode::NotFound, "no boom here");
        if (line == "val") return gp::Response::make_ok({"value 7"});
        return gp::Response::make_ok({std::string(line) + " done"});
    }
    std::vector<std::string> drain_event_lines() override { return {}; }

    std::vector<std::string> lines;
};

gp::ScriptResult run(FakeClient& client, const std::string& text, std::string* out = nullptr) {
    std::istringstream in(text);
    std::ostringstream os;
    auto result = gp::run_script(client, in, os);
    if (out != nullptr) *out = os.str();
    return result;
}

TEST(Gds, LetAndRepeatSubstitute) {
    FakeClient client;
    std::string out;
    auto result = run(client, "let n 3\nrepeat $n\nping\nend\n", &out);
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.requests, 3u);
    EXPECT_EQ(client.lines, (std::vector<std::string>{"ping", "ping", "ping"}));
    EXPECT_NE(out.find("> let n 3\n"), std::string::npos);
    EXPECT_NE(out.find("> repeat 3\n"), std::string::npos);
    EXPECT_NE(out.find("> end\n"), std::string::npos);
}

TEST(Gds, NestedRepeatAndDollarEscape) {
    FakeClient client;
    auto result = run(client, "repeat 2\nrepeat 2\nping $$x\nend\nend\n");
    EXPECT_FALSE(result.failed);
    ASSERT_EQ(client.lines.size(), 4u);
    EXPECT_EQ(client.lines[0], "ping $x");
}

TEST(Gds, IfTakesMatchingBranch) {
    FakeClient client;
    auto result = run(client, "if val == 7\nyes\nelse\nno\nend\n");
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(client.lines, (std::vector<std::string>{"val", "yes"}));

    client.lines.clear();
    result = run(client, "if val == 8\nyes\nelse\nno\nend\n");
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(client.lines, (std::vector<std::string>{"val", "no"}));
}

TEST(Gds, ExpectPassesAndFailsWithLineNumber) {
    FakeClient client;
    EXPECT_FALSE(run(client, "expect val == 7\nexpect val >= 6\n"
                             "expect val contains value\n")
                     .failed);

    auto result = run(client, "ping\nexpect val == 8\nnever\n");
    EXPECT_TRUE(result.failed);
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].line, 2);
    EXPECT_NE(result.diagnostics[0].message.find("expect failed"), std::string::npos);
    EXPECT_NE(result.diagnostics[0].message.find("'7'"), std::string::npos);
    // Execution stopped at the failed expect.
    EXPECT_EQ(client.lines.back(), "val");
}

TEST(Gds, ExpectBlockMatchesBodyAndReportsMismatchLine) {
    FakeClient client;
    EXPECT_FALSE(run(client, "expect-block val\n| value 7\nend\n").failed);

    auto result = run(client, "ping\nexpect-block val\n| value 8\nend\n");
    EXPECT_TRUE(result.failed);
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].line, 3); // the mismatching body line
    EXPECT_NE(result.diagnostics[0].message.find("expect-block mismatch"),
              std::string::npos);
}

TEST(Gds, ErrorResponsesCarryLineNumberedDiagnostics) {
    FakeClient client;
    auto result = run(client, "ping\nboom\npong\n");
    EXPECT_FALSE(result.failed); // error responses don't stop the script
    EXPECT_EQ(result.errors, 1u);
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].line, 2);
    EXPECT_EQ(result.diagnostics[0].text, "boom");
    EXPECT_NE(result.diagnostics[0].message.find("no boom here"), std::string::npos);
}

TEST(Gds, MalformedConstructsFail) {
    FakeClient client;
    auto result = run(client, "repeat 2\nping\n");
    EXPECT_TRUE(result.failed);
    ASSERT_FALSE(result.diagnostics.empty());
    EXPECT_NE(result.diagnostics[0].message.find("without matching 'end'"),
              std::string::npos);

    EXPECT_TRUE(run(client, "end\n").failed);
    EXPECT_TRUE(run(client, "else\n").failed);
    EXPECT_TRUE(run(client, "ping $nosuch\n").failed);
    EXPECT_TRUE(run(client, "repeat banana\nping\nend\n").failed);
}

// ---- golden campaign transcript --------------------------------------------

TEST(Golden, CampaignScriptTranscriptIsByteStable) {
    gmdf::hub::HubController hub;
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/campaign.gds");
    ASSERT_TRUE(script) << "missing examples/campaign.gds";
    std::ostringstream out;
    auto result = gp::run_script(hub, script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_FALSE(result.failed);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/campaign_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/campaign_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());
}

} // namespace
