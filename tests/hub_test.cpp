// Tests for the multi-session debug hub: registry lifecycle (open /
// close / reopen, stable ids), @<session> request routing including the
// closed-session error path, scheduler fairness under a flooding
// transport, event tagging, hub aggregate stats, the bounded trace
// recorder, the bounded controller event queue, and the golden fleet
// transcript.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "comdes/build.hpp"
#include "core/builder.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "hub/controller.hpp"
#include "hub/registry.hpp"
#include "hub/scheduler.hpp"
#include "proto/script.hpp"

namespace gc = gmdf::comdes;
namespace gco = gmdf::core;
namespace gh = gmdf::hub;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gp = gmdf::proto;
namespace rt = gmdf::rt;

namespace {

// A hand-built scenario driven by a ScriptedTransport: `count` signal
// updates spaced `spacing` apart, starting at `spacing`. The target is
// only a clock source for the scheduler; no generated code runs.
struct Scripted {
    std::unique_ptr<gp::Scenario> scenario;
    gco::DebugSession* session = nullptr;
    gl::ScriptedTransport* transport = nullptr;
};

Scripted scripted_scenario(const std::string& name, int count, rt::SimTime spacing) {
    Scripted out;
    out.scenario = std::make_unique<gp::Scenario>(name);
    auto& sys = out.scenario->sys;
    auto sig = sys.add_signal("x", "real_");
    auto actor = sys.add_actor("act", 10'000);
    auto sm = actor.add_sm("machine", {"go"}, {"out"});
    sm.add_state("idle", {{"out", "0"}});
    auto transport = std::make_unique<gl::ScriptedTransport>();
    for (int i = 1; i <= count; ++i)
        transport->push({gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(sig.raw), 0,
                         static_cast<float>(i)},
                        i * spacing);
    out.transport = transport.get();
    out.scenario->session = std::make_unique<gco::DebugSession>(sys.model());
    out.session = out.scenario->session.get();
    out.session->attach(std::move(transport));
    return out;
}

// ---- registry lifecycle -----------------------------------------------------

TEST(Registry, OpenCloseReopenUnderTheSameName) {
    gh::HubController hub;
    auto* first = hub.open("blinker", "t1");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->id, 1);

    // A live name cannot be opened twice.
    auto dup = hub.execute_line("session open blinker t1");
    EXPECT_EQ(dup.code, gp::ErrorCode::BadState);

    ASSERT_TRUE(hub.execute_line("session close t1").ok());
    EXPECT_EQ(hub.registry().size(), 0u);

    // Reopening the name works and yields a fresh, never-reused id.
    auto reopened = hub.execute_line("session open blinker t1");
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.body[0], "session 2 t1 opened (scenario blinker)");
    EXPECT_EQ(hub.registry().opened(), 2u);
    EXPECT_EQ(hub.registry().closed(), 1u);
}

TEST(Registry, RejectsBadNamesAndUnknownScenarios) {
    gh::HubController hub;
    EXPECT_EQ(hub.execute_line("session open no_such_scenario").code,
              gp::ErrorCode::NotFound);
    EXPECT_EQ(hub.execute_line("session open blinker \"two words\"").code,
              gp::ErrorCode::BadArgument);
    EXPECT_EQ(hub.execute_line("session open").code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(hub.registry().size(), 0u);
    EXPECT_FALSE(gh::SessionRegistry::valid_name(""));
    EXPECT_FALSE(gh::SessionRegistry::valid_name("a b"));
    EXPECT_FALSE(gh::SessionRegistry::valid_name("a@b"));
    EXPECT_TRUE(gh::SessionRegistry::valid_name("Cell_7-a"));
    // All-digit names would shadow session ids in @<tag> resolution.
    EXPECT_FALSE(gh::SessionRegistry::valid_name("1"));
    EXPECT_FALSE(gh::SessionRegistry::valid_name("42"));
    EXPECT_TRUE(gh::SessionRegistry::valid_name("42a"));
}

TEST(Registry, AllDigitNamesCannotShadowIds) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr); // id 1
    auto resp = hub.execute_line("session open turntable 1");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadArgument)
        << "a session named '1' could never be addressed";
    EXPECT_EQ(hub.registry().size(), 1u);
}

// ---- @<session> routing -----------------------------------------------------

TEST(Routing, AddressedRequestsReachTheirSessionWithoutSwitching) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("turntable", "b"), nullptr);
    ASSERT_EQ(hub.current()->name, "b");

    auto by_name = hub.execute_line("@a info");
    ASSERT_TRUE(by_name.ok());
    EXPECT_EQ(by_name.body[0], "model blinker_system");
    auto by_id = hub.execute_line("@1 info");
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ(by_id.body[0], "model blinker_system");
    EXPECT_EQ(hub.current()->name, "b") << "@ routing must not switch current";
}

TEST(Routing, ClosedSessionIsAStructuredErrorNotACrash) {
    gh::HubController hub;
    auto* entry = hub.open("blinker", "gone");
    ASSERT_NE(entry, nullptr);
    int id = entry->id;
    ASSERT_TRUE(hub.execute_line("session close gone").ok());

    auto by_id = hub.execute_line("@" + std::to_string(id) + " query stats");
    EXPECT_EQ(by_id.code, gp::ErrorCode::NotFound);
    EXPECT_NE(by_id.message.find("no session"), std::string::npos);
    auto by_name = hub.execute_line("@gone info");
    EXPECT_EQ(by_name.code, gp::ErrorCode::NotFound);
    EXPECT_EQ(hub.stats().request_errors, 2u);
}

TEST(Routing, AddressedSessionVerbsAreRejectedNotMisrouted) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    // '@a session close' must not silently close the current session.
    auto resp = hub.execute_line("@a session close");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadArgument);
    EXPECT_EQ(hub.registry().size(), 2u);
}

TEST(Routing, MalformedPrefixAndNoSessionErrors) {
    gh::HubController hub;
    EXPECT_EQ(hub.execute_line("@").code, gp::ErrorCode::BadRequest);
    EXPECT_EQ(hub.execute_line("@1").code, gp::ErrorCode::BadRequest);
    EXPECT_EQ(hub.execute_line("info").code, gp::ErrorCode::BadState);
    auto quit = hub.execute_line("quit");
    ASSERT_TRUE(quit.ok()) << "quit must succeed even with no open session";
    EXPECT_EQ(quit.body[0], "bye");
}

TEST(Routing, CloseCurrentFallsBackToLowestId) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    ASSERT_NE(hub.open("blinker", "c"), nullptr);
    auto close = hub.execute_line("session close");
    ASSERT_TRUE(close.ok());
    EXPECT_EQ(close.body[0], "session 3 c closed");
    EXPECT_EQ(close.body[1], "current a");
    ASSERT_TRUE(hub.execute_line("session use b").ok());
    EXPECT_EQ(hub.current()->name, "b");
}

// ---- scheduler --------------------------------------------------------------

TEST(Scheduler, FloodingTransportCannotStarveQuietSessions) {
    gh::HubController hub;
    hub.scheduler().set_budget(5 * rt::kMs);
    // 5000 commands inside the first 5 ms vs 5 commands over 50 ms.
    Scripted flood = scripted_scenario("flood", 5000, rt::kUs);
    Scripted quiet = scripted_scenario("quiet", 5, 10 * rt::kMs);
    ASSERT_NE(hub.adopt(std::move(flood.scenario), "flood"), nullptr);
    ASSERT_NE(hub.adopt(std::move(quiet.scenario), "quiet"), nullptr);

    ASSERT_TRUE(hub.execute_line("run 100").ok());

    // Both sessions consumed their whole stream and the full duration.
    EXPECT_EQ(flood.session->engine().stats().commands, 5000u);
    EXPECT_EQ(quiet.session->engine().stats().commands, 5u);
    const auto& stats = hub.scheduler().stats();
    ASSERT_EQ(stats.size(), 2u);
    const auto& flood_stats = stats.at(1);
    const auto& quiet_stats = stats.at(2);
    EXPECT_EQ(flood_stats.slices, 20u); // 100 ms / 5 ms budget
    EXPECT_EQ(flood_stats.slices, quiet_stats.slices);
    EXPECT_EQ(flood_stats.advanced, 100 * rt::kMs);
    EXPECT_EQ(quiet_stats.advanced, 100 * rt::kMs);
}

TEST(Scheduler, RejectsNonPositiveBudget) {
    gh::PollScheduler scheduler;
    EXPECT_THROW(scheduler.set_budget(0), std::invalid_argument);
    EXPECT_THROW(scheduler.set_budget(-5), std::invalid_argument);
}

// ---- events -----------------------------------------------------------------

TEST(Events, TaggingLatchesOnceTheHubGoesMultiSession) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "solo"), nullptr);
    ASSERT_TRUE(hub.execute_line("pause").ok());
    auto single = hub.drain_event_lines();
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], "* state-change waiting -> paused\n");

    ASSERT_NE(hub.open("blinker", "other"), nullptr);
    ASSERT_TRUE(hub.execute_line("@solo resume").ok());
    auto tagged = hub.drain_event_lines();
    ASSERT_EQ(tagged.size(), 1u);
    EXPECT_EQ(tagged[0], "[solo] * state-change paused -> animating\n");

    // Tagging stays on after shrinking back to one session, so a
    // transcript never changes shape mid-stream.
    ASSERT_TRUE(hub.execute_line("session close other").ok());
    ASSERT_TRUE(hub.execute_line("@solo pause").ok());
    auto still_tagged = hub.drain_event_lines();
    ASSERT_EQ(still_tagged.size(), 1u);
    EXPECT_EQ(still_tagged[0], "[solo] * state-change animating -> paused\n");
}

TEST(Events, QueueDropsAreCountedInEngineStats) {
    gh::HubController hub;
    auto* entry = hub.open("blinker", "busy");
    ASSERT_NE(entry, nullptr);
    // Overflow the 4096-deep controller queue without draining.
    for (int i = 0; i < 4100; ++i)
        entry->controller().on_divergence({i, {}, "synthetic divergence"});
    EXPECT_EQ(entry->controller().dropped_events(), 4u);
    auto stats = hub.execute_line("query stats");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.body[6], "events-emitted 4100");
    EXPECT_EQ(stats.body[7], "events-dropped 4");
    // Routing `query stats` swept the controller queue into the hub;
    // the 4096 surviving events are all there.
    EXPECT_EQ(hub.drain_event_lines().size(), 4096u);
    EXPECT_FALSE(entry->controller().has_events());
}

TEST(Events, HubQueueIsBoundedWhenNobodyDrains) {
    gh::HubController hub;
    hub.set_event_capacity(8);
    auto* entry = hub.open("blinker", "busy");
    ASSERT_NE(entry, nullptr);
    for (int i = 0; i < 20; ++i) {
        entry->controller().on_divergence({i, {}, "synthetic divergence"});
        ASSERT_TRUE(hub.execute_line("info").ok()); // sweeps into the hub queue
    }
    EXPECT_EQ(hub.stats().events_dropped, 12u);
    auto lines = hub.drain_event_lines();
    ASSERT_EQ(lines.size(), 8u);
    EXPECT_NE(lines.front().find("@12ns"), std::string::npos) << "oldest evicted first";
}

TEST(Scheduler, StatsForgottenWhenSessionCloses) {
    gh::HubController hub;
    auto* a = hub.open("blinker", "a");
    ASSERT_NE(a, nullptr);
    int id = a->id;
    ASSERT_TRUE(hub.execute_line("run 20").ok());
    EXPECT_TRUE(hub.scheduler().stats().contains(id));
    auto total = hub.scheduler().total_slices();
    ASSERT_TRUE(hub.execute_line("session close a").ok());
    EXPECT_FALSE(hub.scheduler().stats().contains(id))
        << "per-session counters must not leak across session churn";
    EXPECT_EQ(hub.scheduler().total_slices(), total);
}

// ---- hub stats --------------------------------------------------------------

TEST(HubStats, AggregatesAcrossLiveSessions) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    ASSERT_TRUE(hub.execute_line("@a info").ok());
    ASSERT_TRUE(hub.execute_line("@a info").ok());
    ASSERT_TRUE(hub.execute_line("@b info").ok());
    auto stats = hub.execute_line("session stats");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.body[0], "sessions 2 live (opened 2, closed 0)");
    EXPECT_EQ(stats.body[9], "requests 3"); // aggregate of both sessions
    EXPECT_EQ(hub.stats().requests, 1u);    // only `session stats` itself
}

TEST(HubStats, TotalsStayMonotonicAcrossCloses) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    ASSERT_NE(hub.open("blinker", "b"), nullptr);
    ASSERT_TRUE(hub.execute_line("@a info").ok());
    ASSERT_TRUE(hub.execute_line("@b info").ok());
    auto before = hub.registry().aggregate_stats();
    EXPECT_EQ(before.requests, 2u);
    ASSERT_TRUE(hub.execute_line("session close a").ok());
    auto after = hub.registry().aggregate_stats();
    EXPECT_EQ(after.requests, before.requests)
        << "closing a session must not roll hub totals backwards";
    EXPECT_EQ(after.commands, before.commands);
    EXPECT_EQ(after.events_emitted, before.events_emitted);
}

TEST(HubStats, HelpMergesSessionAndHubRegistries) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "a"), nullptr);
    auto help = hub.execute_line("help");
    ASSERT_TRUE(help.ok());
    bool has_session_row = false, has_run_row = false;
    for (const auto& line : help.body) {
        if (line.find("session open <scenario>") != std::string::npos)
            has_session_row = true;
        if (line.find("run <ms>") != std::string::npos) has_run_row = true;
    }
    EXPECT_TRUE(has_session_row);
    EXPECT_TRUE(has_run_row);
    auto topic = hub.execute_line("help session");
    ASSERT_TRUE(topic.ok());
    EXPECT_EQ(topic.body.size(), 6u); // open/close/list/use/revive/stats
}

// ---- bounded trace recorder -------------------------------------------------

TEST(TraceRing, EvictsOldestAndCountsDrops) {
    gco::TraceRecorder trace;
    EXPECT_EQ(trace.capacity(), 0u);
    for (int i = 0; i < 10; ++i)
        trace.record({gl::Cmd::SignalUpdate, 1, 0, static_cast<float>(i)}, i);
    EXPECT_EQ(trace.size(), 10u);
    EXPECT_EQ(trace.dropped(), 0u);

    trace.set_capacity(4); // shrink below current size: evict oldest
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped(), 6u);
    EXPECT_EQ(trace.events().front().t, 6);

    trace.record({gl::Cmd::SignalUpdate, 1, 0, 10.0f}, 10);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped(), 7u);
    EXPECT_EQ(trace.events().front().t, 7);
    EXPECT_EQ(trace.events().back().t, 10);

    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_EQ(trace.capacity(), 4u) << "clear resets contents, not configuration";
}

TEST(TraceRing, BuilderKnobAndTraceVerbReportDrops) {
    gc::SystemBuilder sys{"ringdemo"};
    auto sig = sys.add_signal("x", "real_");
    auto actor = sys.add_actor("act", 10'000);
    auto sm = actor.add_sm("machine", {"go"}, {"out"});
    sm.add_state("idle", {{"out", "0"}});
    auto transport = std::make_unique<gl::ScriptedTransport>();
    for (int i = 1; i <= 5; ++i)
        transport->push({gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(sig.raw), 0,
                         static_cast<float>(i)},
                        i * rt::kMs);
    auto session = gco::SessionBuilder(sys.model())
                       .trace_capacity(2)
                       .transport(std::move(transport))
                       .build();
    session->transports()[0]->poll(session->engine(), 10 * rt::kMs);
    EXPECT_EQ(session->trace().size(), 2u);
    EXPECT_EQ(session->trace().dropped(), 3u);

    auto resp = session->controller().execute_line("trace vcd");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.body[0], "(trace ring dropped 3 oldest events; capacity 2)");
}

// ---- golden fleet transcript ------------------------------------------------

TEST(Golden, FleetScriptTranscriptIsByteStable) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/fleet.gds");
    ASSERT_TRUE(script) << "missing examples/fleet.gds";
    std::ostringstream out;
    auto result = gp::run_script(hub, script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/fleet_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/fleet_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());
}

} // namespace
