// Unit tests for the rendering layer: scene, layout, SVG/ASCII renderers,
// timing diagrams and VCD export.
#include <gtest/gtest.h>

#include "render/ascii.hpp"
#include "render/layout.hpp"
#include "render/scene.hpp"
#include "render/svg.hpp"
#include "render/timing.hpp"
#include "render/vcd.hpp"

namespace rr = gmdf::render;

namespace {

rr::Scene chain_scene(int n) {
    rr::Scene s;
    for (int i = 0; i < n; ++i) {
        rr::SceneNode node;
        node.id = static_cast<std::uint64_t>(i + 1);
        node.label = "n" + std::to_string(i);
        s.add_node(node);
    }
    for (int i = 0; i + 1 < n; ++i) {
        rr::SceneEdge e;
        e.id = 100u + static_cast<std::uint64_t>(i);
        e.from = static_cast<std::uint64_t>(i + 1);
        e.to = static_cast<std::uint64_t>(i + 2);
        s.add_edge(e);
    }
    return s;
}

TEST(Scene, AddAndFind) {
    rr::Scene s = chain_scene(3);
    EXPECT_NE(s.find_node(1), nullptr);
    EXPECT_EQ(s.find_node(99), nullptr);
    EXPECT_NE(s.find_edge(100), nullptr);
    EXPECT_EQ(s.find_edge(1), nullptr);
}

TEST(Scene, DecayDropsWeakHighlights) {
    rr::Scene s = chain_scene(1);
    s.nodes()[0].style.highlighted = true;
    s.nodes()[0].style.intensity = 0.5;
    s.decay_highlights(0.5);
    EXPECT_TRUE(s.nodes()[0].style.highlighted);
    s.decay_highlights(0.1);
    EXPECT_FALSE(s.nodes()[0].style.highlighted);
    EXPECT_EQ(s.nodes()[0].style.intensity, 0.0);
}

TEST(Layout, ChainBecomesLayers) {
    rr::Scene s = chain_scene(4);
    rr::auto_layout(s);
    // Strictly increasing x along the chain.
    for (std::size_t i = 0; i + 1 < s.nodes().size(); ++i)
        EXPECT_LT(s.nodes()[i].rect.x, s.nodes()[i + 1].rect.x);
}

TEST(Layout, CycleDoesNotHang) {
    rr::Scene s = chain_scene(3);
    rr::SceneEdge back;
    back.id = 999;
    back.from = 3;
    back.to = 1;
    s.add_edge(back);
    rr::auto_layout(s); // must terminate
    EXPECT_GT(s.bounds().w, 0);
}

TEST(Layout, ParallelNodesStack) {
    rr::Scene s;
    for (int i = 0; i < 3; ++i) {
        rr::SceneNode n;
        n.id = static_cast<std::uint64_t>(i + 1);
        s.add_node(n);
    }
    rr::auto_layout(s);
    // Same layer: same x, distinct y.
    EXPECT_EQ(s.nodes()[0].rect.x, s.nodes()[1].rect.x);
    EXPECT_NE(s.nodes()[0].rect.y, s.nodes()[1].rect.y);
}

TEST(Svg, ContainsShapesAndHighlight) {
    rr::Scene s = chain_scene(2);
    s.nodes()[0].shape = rr::Shape::Circle;
    s.nodes()[0].style.highlighted = true;
    s.nodes()[0].style.intensity = 1.0;
    rr::auto_layout(s);
    std::string svg = rr::render_svg(s);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("<ellipse"), std::string::npos);
    EXPECT_NE(svg.find("#ff8800"), std::string::npos); // highlight fill
    EXPECT_NE(svg.find("marker-end"), std::string::npos);
    EXPECT_NE(svg.find("n0"), std::string::npos);
}

TEST(Svg, EscapesLabels) {
    rr::Scene s;
    rr::SceneNode n;
    n.id = 1;
    n.label = "a<b&c>";
    s.add_node(n);
    rr::auto_layout(s);
    std::string svg = rr::render_svg(s);
    EXPECT_EQ(svg.find("a<b"), std::string::npos);
    EXPECT_NE(svg.find("a&lt;b&amp;c&gt;"), std::string::npos);
}

TEST(Ascii, DrawsBoxesAndHighlights) {
    rr::Scene s = chain_scene(2);
    s.nodes()[1].style.highlighted = true;
    rr::auto_layout(s);
    std::string art = rr::render_ascii(s);
    EXPECT_NE(art.find("n0"), std::string::npos);
    EXPECT_NE(art.find("n1"), std::string::npos);
    EXPECT_NE(art.find('#'), std::string::npos); // highlighted border
    EXPECT_NE(art.find('+'), std::string::npos); // plain border
}

TEST(Ascii, EmptyScene) {
    rr::Scene s;
    EXPECT_EQ(rr::render_ascii(s), "(empty scene)\n");
}

TEST(Timing, RendersLanesAndChangePoints) {
    rr::TimingDiagram d;
    auto lane = d.add_lane("machine");
    d.change(lane, 0, "idle");
    d.change(lane, 500, "run");
    d.change(lane, 900, "idle");
    std::string art = d.render_ascii(40, 0, 1000);
    EXPECT_NE(art.find("machine"), std::string::npos);
    EXPECT_NE(art.find('|'), std::string::npos); // change marker
    EXPECT_NE(art.find('r'), std::string::npos); // "run" bucket
}

TEST(Timing, RejectsTimeTravel) {
    rr::TimingDiagram d;
    auto lane = d.add_lane("x");
    d.change(lane, 100, "a");
    EXPECT_THROW(d.change(lane, 50, "b"), std::invalid_argument);
}

TEST(Vcd, WellFormedDocument) {
    rr::VcdWriter vcd;
    auto s = vcd.add_int("sm_state");
    auto v = vcd.add_real("speed");
    vcd.change_int(s, 0, 1);
    vcd.change_real(v, 0, 2.5);
    vcd.change_int(s, 1000, 2);
    std::string doc = vcd.str();
    EXPECT_NE(doc.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(doc.find("$var wire 32"), std::string::npos);
    EXPECT_NE(doc.find("$var real 64"), std::string::npos);
    EXPECT_NE(doc.find("#0"), std::string::npos);
    EXPECT_NE(doc.find("#1000"), std::string::npos);
    EXPECT_NE(doc.find("r2.5"), std::string::npos);
}

TEST(Vcd, TypeMismatchThrows) {
    rr::VcdWriter vcd;
    auto s = vcd.add_int("x");
    EXPECT_THROW(vcd.change_real(s, 0, 1.0), std::invalid_argument);
}

} // namespace
