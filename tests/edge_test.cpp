// Edge-case and robustness tests across modules: empty inputs, boundary
// strides, decay behaviour, malformed wire data, and odd-but-legal models.
#include <gtest/gtest.h>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/animator.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"
#include "meta/serialize.hpp"

namespace gc = gmdf::comdes;
namespace gg = gmdf::codegen;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gco = gmdf::core;
namespace rt = gmdf::rt;

namespace {

TEST(Edge, AbstractEmptyModel) {
    gm::Model empty(gc::comdes_metamodel().mm);
    auto result = gco::abstract_model(empty, gco::comdes_default_mapping());
    EXPECT_EQ(result.mapped_nodes, 0u);
    EXPECT_EQ(result.mapped_edges, 0u);
    EXPECT_EQ(gmdf::render::render_ascii(result.scene), "(empty scene)\n");
}

TEST(Edge, ReplayStrideLargerThanTrace) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {});
    auto s0 = sm.add_state("s0");
    sm.add_transition(s0, s0, "go");
    gco::DebugSession session(sys.model());
    session.engine().ingest({gl::Cmd::StateEnter, static_cast<std::uint32_t>(sm.sm_id().raw),
                             static_cast<std::uint32_t>(s0.raw), 0.0f},
                            rt::kMs);
    EXPECT_TRUE(session.replay_frames(100).empty()); // stride > events: no frame
    EXPECT_EQ(session.replay_frames(1).size(), 1u);
    EXPECT_EQ(session.replay_frames(0).size(), 1u); // stride 0 clamps to 1
}

TEST(Edge, HighlightDecaysBetweenDistantEvents) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {});
    auto s0 = sm.add_state("s0");
    auto s1 = sm.add_state("s1");
    sm.add_transition(s0, s1, "go");
    auto abs = gco::abstract_model(sys.model(), gco::comdes_default_mapping());
    gco::DebuggerEngine engine(sys.model());
    gco::SceneAnimator animator(sys.model(), abs.scene);
    animator.set_highlight_half_life(100 * rt::kMs);
    engine.add_observer(&animator);

    auto enter = [&](gm::ObjectId st, rt::SimTime t) {
        engine.ingest({gl::Cmd::StateEnter, static_cast<std::uint32_t>(sm.sm_id().raw),
                       static_cast<std::uint32_t>(st.raw), 0.0f},
                      t);
    };
    enter(s0, rt::kMs);
    EXPECT_DOUBLE_EQ(abs.scene.find_node(s0.raw)->style.intensity, 1.0);
    // Ten half-lives later another event arrives: the old highlight has
    // decayed away (exclusive highlight also clears it, so check s1).
    enter(s1, rt::kMs + rt::kSec);
    EXPECT_DOUBLE_EQ(abs.scene.find_node(s1.raw)->style.intensity, 1.0);
    EXPECT_FALSE(abs.scene.find_node(s0.raw)->style.highlighted);
}

TEST(Edge, DecoderSurvivesRandomGarbage) {
    gl::FrameDecoder decoder;
    std::vector<std::uint8_t> garbage;
    for (int i = 0; i < 1000; ++i)
        garbage.push_back(static_cast<std::uint8_t>((i * 7919) & 0xFF));
    decoder.feed(garbage);
    auto good = gl::frame_payload(gl::encode_command({gl::Cmd::Hello, 1, 2, 0.0f}));
    decoder.feed(good);
    auto payloads = decoder.take_payloads();
    // Garbage may alias to at most corrupt frames, never to valid ones
    // except astronomically unlikely CRC collisions; the good frame must
    // arrive last.
    ASSERT_FALSE(payloads.empty());
    auto cmd = gl::decode_command(payloads.back());
    ASSERT_TRUE(cmd.has_value());
    EXPECT_EQ(cmd->kind, gl::Cmd::Hello);
}

TEST(Edge, ActorWithNoSignalsRuns) {
    gc::SystemBuilder sys("inert");
    auto a = sys.add_actor("idle_actor", 10'000);
    a.add_basic("c", "const_", {1.0});
    ASSERT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));
    rt::Target target;
    (void)gg::load_system(target, sys.model(), gg::InstrumentOptions::active());
    target.start();
    target.run_for(55 * rt::kMs); // releases at 10..50 ms complete by 55 ms
    EXPECT_EQ(target.node(0).task_stats("idle_actor").completions, 5u);
}

TEST(Edge, SelfLoopTransitionAnimates) {
    gc::SystemBuilder sys("loop");
    auto a = sys.add_actor("a", 10'000);
    auto sm = a.add_sm("m", {"go"}, {"n"});
    auto s0 = sm.add_state("busy");
    auto t_self = sm.add_transition(s0, s0, "go");
    auto one = a.add_basic("one", "const_", {1.0});
    a.connect(one, "out", sm.sm_id(), "go");
    ASSERT_TRUE(gm::is_clean(gc::validate_comdes(sys.model())));

    rt::Target target;
    (void)gg::load_system(target, sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.run_for(100 * rt::kMs);
    // Self transitions re-fire every scan and must not diverge.
    EXPECT_TRUE(session.divergences().empty());
    EXPECT_GT(session.trace().filter(gl::Cmd::Transition).size(), 3u);
    EXPECT_NE(session.scene().find_edge(t_self.raw), nullptr);
}

TEST(Edge, ZeroPeriodActorRejected) {
    gc::SystemBuilder sys("bad");
    sys.add_actor("a", 0);
    EXPECT_FALSE(gm::is_clean(gc::validate_comdes(sys.model())));
}

TEST(Edge, VcdFromEmptyTraceIsValid) {
    gco::TraceRecorder trace;
    gm::Model empty(gc::comdes_metamodel().mm);
    std::string vcd = trace.to_vcd(empty);
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

TEST(Edge, SerializeSpecialFloats) {
    gc::SystemBuilder sys("floats");
    auto sig = sys.add_signal("x", "real_", 1.0e-300);
    auto& obj = sys.model().at(sig);
    obj.set_attr("init", gm::Value(-0.0));
    std::string text = gm::write_model(sys.model());
    gm::Model reread = gm::read_model(gc::comdes_metamodel().mm, text);
    EXPECT_EQ(gm::write_model(reread), text);
}

TEST(Edge, PauseDuringUartBacklogStillDelivers) {
    // Events queued on the wire before a pause must still reach the
    // debugger (they left the target already).
    gc::SystemBuilder sys("backlog");
    auto a = sys.add_actor("fast", 1'000);
    auto sm = a.add_sm("m", {"go"}, {});
    auto s0 = sm.add_state("s0");
    auto s1 = sm.add_state("s1");
    sm.add_transition(s0, s1, "go");
    sm.add_transition(s1, s0, "go");
    auto one = a.add_basic("one", "const_", {1.0});
    a.connect(one, "out", sm.sm_id(), "go");

    rt::Target target;
    (void)gg::load_system(target, sys.model(), gg::InstrumentOptions::active());
    gco::DebugSession session(sys.model());
    session.attach(gco::make_active_uart_transport(target));
    target.start();
    target.run_for(100 * rt::kMs);
    auto before = session.engine().stats().commands;
    target.pause();
    target.run_for(500 * rt::kMs); // wire backlog drains while paused
    EXPECT_GT(session.engine().stats().commands, before);
}

} // namespace
