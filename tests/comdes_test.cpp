// Unit tests for the COMDES DSL: metamodel, builders, pin metadata,
// function-block kernels, state-machine kernels, and domain validation.
#include <gtest/gtest.h>

#include <cmath>

#include "comdes/build.hpp"
#include "comdes/fblib.hpp"
#include "comdes/metamodel.hpp"
#include "comdes/validate.hpp"
#include "meta/serialize.hpp"

namespace gc = gmdf::comdes;
namespace gm = gmdf::meta;

namespace {

std::string first_error(const gm::Diagnostics& ds) {
    for (const auto& d : ds)
        if (d.severity == gm::Severity::Error) return d.to_string();
    return {};
}

TEST(ComdesMeta, ClassesPresent) {
    const auto& c = gc::comdes_metamodel();
    EXPECT_EQ(c.mm.name(), "comdes");
    EXPECT_NE(c.system, nullptr);
    EXPECT_TRUE(c.basic_fb->is_subtype_of(*c.function_block));
    EXPECT_TRUE(c.sm_fb->is_subtype_of(*c.named));
    EXPECT_TRUE(c.basic_kind->contains("pid_"));
    EXPECT_TRUE(c.basic_kind->contains("expression_"));
}

TEST(Builder, SimpleSystemValidates) {
    gc::SystemBuilder sys("demo");
    auto temp = sys.add_signal("temp", "real_", 20.0);
    auto heat = sys.add_signal("heat", "bool_");
    auto actor = sys.add_actor("ctrl", 10'000);
    auto cmp = actor.add_basic("too_cold", "lt_", {18.0});
    actor.bind_input(temp, cmp, "in");
    actor.bind_output(cmp, "out", heat);
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_TRUE(gm::is_clean(ds)) << first_error(ds);
}

TEST(Builder, ComdesModelSerializes) {
    gc::SystemBuilder sys("demo");
    auto s = sys.add_signal("x");
    auto actor = sys.add_actor("a", 1000);
    auto g = actor.add_basic("gain", "gain_", {2.0});
    actor.bind_input(s, g, "in");
    std::string text = gm::write_model(sys.model());
    gm::Model copy = gm::read_model(gc::comdes_metamodel().mm, text);
    EXPECT_EQ(gm::write_model(copy), text);
    EXPECT_TRUE(gm::is_clean(gc::validate_comdes(copy)));
}

TEST(Pins, BasicKinds) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto add = a.add_basic("sum", "add_");
    auto pins = gc::pins_of(sys.model(), sys.model().at(add));
    EXPECT_EQ(pins.inputs, (std::vector<std::string>{"in1", "in2"}));
    EXPECT_EQ(pins.outputs, (std::vector<std::string>{"out"}));
    EXPECT_EQ(pins.input_index("in2"), 1);
    EXPECT_EQ(pins.input_index("zzz"), -1);
}

TEST(Pins, ExpressionDerivesInputsFromFreeVars) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto e = a.add_basic("fn", "expression_", {}, "b * 2 + a");
    auto pins = gc::pins_of(sys.model(), sys.model().at(e));
    EXPECT_EQ(pins.inputs, (std::vector<std::string>{"a", "b"})); // sorted
    EXPECT_EQ(pins.outputs, (std::vector<std::string>{"out"}));
}

TEST(Pins, StateMachineAppendsStatePin) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto sm = a.add_sm("fsm", {"go"}, {"speed"});
    auto s0 = sm.add_state("idle");
    sm.add_transition(s0, s0, "go");
    auto pins = gc::pins_of(sys.model(), sys.model().at(sm.sm_id()));
    EXPECT_EQ(pins.inputs, (std::vector<std::string>{"go"}));
    EXPECT_EQ(pins.outputs, (std::vector<std::string>{"speed", "state"}));
}

// --- Basic kernel semantics, swept over kinds -------------------------------

struct KernelCase {
    const char* kind;
    std::vector<double> params;
    std::vector<double> inputs;
    double expected;
};

class KernelSweep : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelSweep, SingleStep) {
    const auto& c = GetParam();
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    std::initializer_list<double> no_params{};
    auto fb_id = a.add_basic("fb", c.kind, no_params);
    auto& fb = sys.model().at(fb_id);
    if (!c.params.empty()) {
        gm::Value::List l;
        for (double p : c.params) l.emplace_back(p);
        fb.set_attr("params", gm::Value(std::move(l)));
    }
    auto kernel = gc::make_basic_kernel(fb);
    double out = -999.0;
    kernel->step(c.inputs, std::span<double>(&out, 1), 0.001);
    EXPECT_NEAR(out, c.expected, 1e-12) << c.kind;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, KernelSweep,
    ::testing::Values(
        KernelCase{"const_", {5.0}, {}, 5.0}, KernelCase{"gain_", {3.0}, {2.0}, 6.0},
        KernelCase{"offset_", {1.5}, {2.0}, 3.5}, KernelCase{"add_", {}, {2, 3}, 5.0},
        KernelCase{"sub_", {}, {2, 3}, -1.0}, KernelCase{"mul_", {}, {2, 3}, 6.0},
        KernelCase{"div_", {}, {6, 3}, 2.0}, KernelCase{"div_", {}, {6, 0}, 0.0},
        KernelCase{"min_", {}, {2, 3}, 2.0}, KernelCase{"max_", {}, {2, 3}, 3.0},
        KernelCase{"abs_", {}, {-4}, 4.0}, KernelCase{"not_", {}, {0}, 1.0},
        KernelCase{"and_", {}, {1, 1}, 1.0}, KernelCase{"and_", {}, {1, 0}, 0.0},
        KernelCase{"or_", {}, {0, 1}, 1.0}, KernelCase{"xor_", {}, {1, 1}, 0.0},
        KernelCase{"gt_", {2.0}, {3}, 1.0}, KernelCase{"gt_", {2.0}, {2}, 0.0},
        KernelCase{"ge_", {2.0}, {2}, 1.0}, KernelCase{"lt_", {2.0}, {1}, 1.0},
        KernelCase{"le_", {2.0}, {3}, 0.0}, KernelCase{"limit_", {-1, 1}, {5}, 1.0},
        KernelCase{"limit_", {-1, 1}, {-5}, -1.0},
        KernelCase{"deadband_", {0.5}, {0.3}, 0.0},
        KernelCase{"deadband_", {0.5}, {0.8}, 0.8}));

TEST(Kernel, IntegratorAccumulates) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("i", "integrator_", {2.0, 10.0}); // k=2, y0=10
    auto k = gc::make_basic_kernel(sys.model().at(id));
    double in = 1.0, out = 0.0;
    for (int i = 0; i < 100; ++i) k->step({&in, 1}, {&out, 1}, 0.01);
    EXPECT_NEAR(out, 10.0 + 2.0 * 1.0 * 1.0, 1e-9); // y0 + k * integral(1) over 1s
    k->reset();
    k->step({&in, 1}, {&out, 1}, 0.01);
    EXPECT_NEAR(out, 10.0 + 2.0 * 0.01, 1e-9);
}

TEST(Kernel, DelayShiftsSamples) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("d", "delay_", {3.0});
    auto k = gc::make_basic_kernel(sys.model().at(id));
    double out = 0.0;
    for (int i = 1; i <= 6; ++i) {
        double in = i;
        k->step({&in, 1}, {&out, 1}, 0.01);
        if (i <= 3) EXPECT_EQ(out, 0.0);
        else EXPECT_EQ(out, i - 3);
    }
}

TEST(Kernel, HysteresisLatches) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("h", "hysteresis_", {1.0, 2.0});
    auto k = gc::make_basic_kernel(sys.model().at(id));
    auto run = [&](double in) {
        double out = 0.0;
        k->step({&in, 1}, {&out, 1}, 0.01);
        return out;
    };
    EXPECT_EQ(run(1.5), 0.0); // between thresholds: stays low
    EXPECT_EQ(run(2.5), 1.0); // above hi: high
    EXPECT_EQ(run(1.5), 1.0); // between: holds
    EXPECT_EQ(run(0.5), 0.0); // below lo: low
}

TEST(Kernel, CounterCountsRisingEdges) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("c", "counter_", {100.0});
    auto k = gc::make_basic_kernel(sys.model().at(id));
    auto run = [&](double inc, double reset) {
        double in[2] = {inc, reset}, out = 0.0;
        k->step({in, 2}, {&out, 1}, 0.01);
        return out;
    };
    EXPECT_EQ(run(1, 0), 1.0);
    EXPECT_EQ(run(1, 0), 1.0); // still high: no new edge
    EXPECT_EQ(run(0, 0), 1.0);
    EXPECT_EQ(run(1, 0), 2.0);
    EXPECT_EQ(run(0, 1), 0.0); // reset wins
}

TEST(Kernel, LowPassConverges) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("f", "lowpass_", {0.1});
    auto k = gc::make_basic_kernel(sys.model().at(id));
    double in = 1.0, out = 0.0;
    k->step({&in, 1}, {&out, 1}, 0.01);
    EXPECT_NEAR(out, 1.0, 1e-9); // first sample initializes the state
    in = 0.0;
    for (int i = 0; i < 2000; ++i) k->step({&in, 1}, {&out, 1}, 0.01);
    EXPECT_NEAR(out, 0.0, 1e-6);
}

TEST(Kernel, RateLimitBoundsSlew) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("r", "ratelimit_", {10.0}); // 10 units/s
    auto k = gc::make_basic_kernel(sys.model().at(id));
    double out = 0.0, in = 0.0;
    k->step({&in, 1}, {&out, 1}, 0.1);
    in = 100.0;
    k->step({&in, 1}, {&out, 1}, 0.1);
    EXPECT_NEAR(out, 1.0, 1e-12); // at most 10 * 0.1 per step
}

TEST(Kernel, PidDrivesPlantToSetpoint) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("pid", "pid_", {2.0, 1.0, 0.0, -10.0, 10.0});
    auto k = gc::make_basic_kernel(sys.model().at(id));
    // First-order plant: y' = (u - y) / tau.
    double y = 0.0;
    const double dt = 0.01, tau = 0.5, sp = 1.0;
    for (int i = 0; i < 5000; ++i) {
        double in[2] = {sp, y}, u = 0.0;
        k->step({in, 2}, {&u, 1}, dt);
        y += (u - y) / tau * dt;
    }
    EXPECT_NEAR(y, sp, 1e-3);
}

TEST(Kernel, ExpressionEvaluates) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("e", "expression_", {}, "max(a, b) + 0.5");
    auto k = gc::make_basic_kernel(sys.model().at(id));
    double in[2] = {1.0, 3.0}, out = 0.0; // a=1, b=3 (sorted order)
    k->step({in, 2}, {&out, 1}, 0.01);
    EXPECT_DOUBLE_EQ(out, 3.5);
}

TEST(Kernel, BadParamCountThrows) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto id = a.add_basic("g", "gain_"); // gain_ needs 1 param
    EXPECT_THROW((void)gc::make_basic_kernel(sys.model().at(id)), std::invalid_argument);
}

// --- State machine kernel ----------------------------------------------------

struct SmEvents : gc::SmObserver {
    std::vector<gm::ObjectId> entered;
    std::vector<gm::ObjectId> fired;
    void on_state_enter(gm::ObjectId, gm::ObjectId s) override { entered.push_back(s); }
    void on_transition(gm::ObjectId, gm::ObjectId t) override { fired.push_back(t); }
};

struct SmFixture {
    gc::SystemBuilder sys{"s"};
    gm::ObjectId sm_id;
    gm::ObjectId idle, run;
    gm::ObjectId t_start, t_stop;

    SmFixture() {
        auto a = sys.add_actor("a", 1000);
        auto smb = a.add_sm("fsm", {"start", "stop", "level"}, {"speed"});
        idle = smb.add_state("idle", {{"speed", "0"}});
        run = smb.add_state("running", {{"speed", "level * 2"}});
        t_start = smb.add_transition(idle, run, "start", "level > 0");
        t_stop = smb.add_transition(run, idle, "stop");
        sm_id = smb.sm_id();
    }
};

TEST(SmKernel, InitialEntryOnFirstScan) {
    SmFixture f;
    SmEvents ev;
    auto k = gc::make_sm_kernel(f.sys.model(), f.sys.model().at(f.sm_id), &ev);
    double in[3] = {0, 0, 0}, out[2] = {-1, -1};
    k->step({in, 3}, {out, 2}, 0.001);
    ASSERT_EQ(ev.entered.size(), 1u);
    EXPECT_EQ(ev.entered[0], f.idle);
    EXPECT_EQ(out[0], 0.0); // entry action speed=0
    EXPECT_EQ(out[1], 0.0); // state index of idle
}

TEST(SmKernel, GuardBlocksTransition) {
    SmFixture f;
    SmEvents ev;
    auto k = gc::make_sm_kernel(f.sys.model(), f.sys.model().at(f.sm_id), &ev);
    double out[2];
    double blocked[3] = {1, 0, 0}; // start=1 but level=0: guard fails
    k->step({blocked, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[1], 0.0);
    double enabled[3] = {1, 0, 4}; // level=4: guard passes
    k->step({enabled, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[1], 1.0);
    EXPECT_EQ(out[0], 8.0); // entry action speed = level * 2
    ASSERT_EQ(ev.fired.size(), 1u);
    EXPECT_EQ(ev.fired[0], f.t_start);
}

TEST(SmKernel, OneTransitionPerScan) {
    SmFixture f;
    auto k = gc::make_sm_kernel(f.sys.model(), f.sys.model().at(f.sm_id), nullptr);
    double out[2];
    // start and stop both asserted: only idle->running fires this scan.
    double both[3] = {1, 1, 5};
    k->step({both, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[1], 1.0);
    k->step({both, 3}, {out, 2}, 0.001); // next scan: running->idle
    EXPECT_EQ(out[1], 0.0);
}

TEST(SmKernel, OutputsHoldBetweenAssignments) {
    SmFixture f;
    auto k = gc::make_sm_kernel(f.sys.model(), f.sys.model().at(f.sm_id), nullptr);
    double out[2];
    double go[3] = {1, 0, 3};
    k->step({go, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[0], 6.0);
    double quiet[3] = {0, 0, 99}; // no transition: speed holds despite level change
    k->step({quiet, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[0], 6.0);
}

TEST(SmKernel, PriorityOrdersTransitions) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {"path"});
    auto s0 = smb.add_state("s0");
    auto hi = smb.add_state("hi", {{"path", "1"}});
    auto lo = smb.add_state("lo", {{"path", "2"}});
    smb.add_transition(s0, lo, "go", "", {}, 5);
    smb.add_transition(s0, hi, "go", "", {}, 1); // lower number wins
    auto k = gc::make_sm_kernel(sys.model(), sys.model().at(smb.sm_id()), nullptr);
    double in = 1.0, out[2];
    k->step({&in, 1}, {out, 2}, 0.001);
    EXPECT_EQ(out[0], 1.0);
    (void)lo;
}

TEST(SmKernel, ResetRestoresInitialState) {
    SmFixture f;
    auto k = gc::make_sm_kernel(f.sys.model(), f.sys.model().at(f.sm_id), nullptr);
    double out[2];
    double go[3] = {1, 0, 1};
    k->step({go, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[1], 1.0);
    k->reset();
    double quiet[3] = {0, 0, 0};
    k->step({quiet, 3}, {out, 2}, 0.001);
    EXPECT_EQ(out[1], 0.0);
}

TEST(SmKernel, UnknownEventPinThrows) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {});
    auto s0 = smb.add_state("s0");
    smb.add_transition(s0, s0, "bogus");
    EXPECT_THROW((void)gc::make_sm_kernel(sys.model(), sys.model().at(smb.sm_id()), nullptr),
                 std::invalid_argument);
}

// --- Domain validation --------------------------------------------------------

TEST(Validate, DuplicateBlockNames) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    a.add_basic("x", "abs_");
    a.add_basic("x", "abs_");
    EXPECT_FALSE(gm::is_clean(gc::validate_comdes(sys.model())));
}

TEST(Validate, UnknownPinInConnection) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto f1 = a.add_basic("f1", "abs_");
    auto f2 = a.add_basic("f2", "abs_");
    a.connect(f1, "nope", f2, "in");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_NE(first_error(ds).find("no output"), std::string::npos);
}

TEST(Validate, DoubleDrivenInput) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto f1 = a.add_basic("f1", "abs_");
    auto f2 = a.add_basic("f2", "abs_");
    auto f3 = a.add_basic("f3", "abs_");
    a.connect(f1, "out", f3, "in");
    a.connect(f2, "out", f3, "in");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_NE(first_error(ds).find("more than one"), std::string::npos);
}

TEST(Validate, CombinationalCycleDetected) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto f1 = a.add_basic("f1", "gain_", {1.0});
    auto f2 = a.add_basic("f2", "gain_", {1.0});
    a.connect(f1, "out", f2, "in");
    a.connect(f2, "out", f1, "in");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_NE(first_error(ds).find("cycle"), std::string::npos);
}

TEST(Validate, DelayBreaksCycle) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto f1 = a.add_basic("f1", "gain_", {1.0});
    auto d = a.add_basic("d", "delay_", {1.0});
    a.connect(f1, "out", d, "in");
    a.connect(d, "out", f1, "in");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_TRUE(gm::is_clean(ds)) << first_error(ds);
}

TEST(Validate, DeadlineBeyondPeriod) {
    gc::SystemBuilder sys("s");
    sys.add_actor("a", 1000, 2000);
    EXPECT_FALSE(gm::is_clean(gc::validate_comdes(sys.model())));
}

TEST(Validate, BadGuardExpressionReported) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {});
    auto s0 = smb.add_state("s0");
    smb.add_transition(s0, s0, "go", "1 +");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_NE(first_error(ds).find("parse"), std::string::npos);
}

TEST(Validate, UnreachableStateWarned) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {});
    auto s0 = smb.add_state("s0");
    smb.add_state("orphan");
    smb.add_transition(s0, s0, "go");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_TRUE(gm::is_clean(ds)); // warning, not error
    bool warned = false;
    for (const auto& d : ds)
        if (d.severity == gm::Severity::Warning &&
            d.to_string().find("unreachable") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned);
}

TEST(Validate, BindingToUnknownBlock) {
    gc::SystemBuilder sys("s");
    auto sig = sys.add_signal("x");
    auto a = sys.add_actor("a", 1000);
    auto fb = a.add_basic("f", "abs_");
    a.bind_input(sig, fb, "in");
    // Corrupt the binding to name a non-existent block.
    for (auto* b : sys.model().all_of(*gc::comdes_metamodel().actor_input))
        b->set_attr("fb", gm::Value("ghost"));
    EXPECT_FALSE(gm::is_clean(gc::validate_comdes(sys.model())));
}

TEST(Validate, AssignmentToUndeclaredOutput) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {"y"});
    auto s0 = smb.add_state("s0", {{"z", "1"}}); // z not declared
    smb.add_transition(s0, s0, "go");
    auto ds = gc::validate_comdes(sys.model());
    EXPECT_NE(first_error(ds).find("not a declared output"), std::string::npos);
}

TEST(Validate, ImplicitStatePinNotAssignable) {
    gc::SystemBuilder sys("s");
    auto a = sys.add_actor("a", 1000);
    auto smb = a.add_sm("fsm", {"go"}, {"y"});
    auto s0 = smb.add_state("s0", {{"state", "7"}});
    smb.add_transition(s0, s0, "go");
    EXPECT_FALSE(gm::is_clean(gc::validate_comdes(sys.model())));
}

} // namespace
