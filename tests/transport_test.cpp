// Tests for the pluggable transport API and the engine's observer bus:
// custom transports drive scripted commands through DebugSession::attach,
// observers see one coherent event stream (scene animation, trace,
// divergences, breakpoints incl. one-shot auto-removal), and a second
// scene observer animates two scenes from one session.
#include <gtest/gtest.h>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "core/abstraction.hpp"
#include "core/animator.hpp"
#include "core/builder.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

namespace gc = gmdf::comdes;
namespace gg = gmdf::codegen;
namespace gl = gmdf::link;
namespace gm = gmdf::meta;
namespace gco = gmdf::core;
namespace rt = gmdf::rt;

namespace {

// Same two-state machine as core_test's DemoSystem, minus the plumbing.
struct Demo {
    gc::SystemBuilder sys{"demo"};
    gm::ObjectId speed;
    gm::ObjectId sm_id, s_idle, s_run, t_go, t_stop;

    Demo() {
        speed = sys.add_signal("speed", "real_");
        auto a = sys.add_actor("ctl", 10'000);
        auto smb = a.add_sm("machine", {"go"}, {"out"});
        s_idle = smb.add_state("idle", {{"out", "0"}});
        s_run = smb.add_state("run", {{"out", "1"}});
        t_go = smb.add_transition(s_idle, s_run, "go");
        t_stop = smb.add_transition(s_run, s_idle, "", "!go");
        sm_id = smb.sm_id();
        auto one = a.add_basic("one", "const_", {1.0});
        a.connect(one, "out", sm_id, "go");
        a.bind_output(sm_id, "out", speed);
    }

    [[nodiscard]] gl::Command enter(gm::ObjectId state) const {
        return {gl::Cmd::StateEnter, static_cast<std::uint32_t>(sm_id.raw),
                static_cast<std::uint32_t>(state.raw), 0.0f};
    }
    [[nodiscard]] gl::Command fire(gm::ObjectId transition) const {
        return {gl::Cmd::Transition, static_cast<std::uint32_t>(sm_id.raw),
                static_cast<std::uint32_t>(transition.raw), 0.0f};
    }
    [[nodiscard]] gl::Command signal(float v) const {
        return {gl::Cmd::SignalUpdate, static_cast<std::uint32_t>(speed.raw), 0, v};
    }
};

// A transport implemented outside the library: proves the interface is
// the complete seam (no friend access, no session internals needed).
class MockTransport final : public gl::Transport {
public:
    explicit MockTransport(std::vector<gl::Command> script) : script_(std::move(script)) {}

    [[nodiscard]] const char* name() const override { return "mock"; }

    void open(gl::CommandSink& sink) override {
        opened_ = true;
        sink_ = &sink;
    }

    void poll(gl::CommandSink& sink, rt::SimTime now) override {
        for (const gl::Command& cmd : script_) {
            ++delivered_;
            sink.deliver(cmd, now);
        }
        script_.clear();
    }

    void close() override { sink_ = nullptr; }

    [[nodiscard]] gl::TransportStats stats() const override {
        gl::TransportStats s;
        s.commands = delivered_;
        return s;
    }

    [[nodiscard]] gl::TargetControl control() override {
        return {[this] { ++pauses_; }, [this] { ++resumes_; },
                [this](const gl::StepFilter& f) { steps_.push_back(f.actor); }};
    }

    bool opened_ = false;
    gl::CommandSink* sink_ = nullptr;
    std::uint64_t delivered_ = 0;
    std::uint64_t pauses_ = 0;
    std::uint64_t resumes_ = 0;
    std::vector<std::string> steps_;

private:
    std::vector<gl::Command> script_;
};

// Records every observer callback with a sequence number.
struct RecordingObserver final : gco::EngineObserver {
    struct Event {
        std::string kind;
        gl::Command cmd;
        rt::SimTime t = 0;
    };
    std::vector<Event> events;
    std::vector<int> breakpoint_handles;

    void on_command(const gl::Command& cmd, rt::SimTime t) override {
        events.push_back({"command", cmd, t});
    }
    void on_reaction(const gl::Command& cmd, const gco::ReactionSpec&,
                     rt::SimTime t) override {
        events.push_back({"reaction", cmd, t});
    }
    void on_breakpoint_hit(int handle, const gco::Breakpoint&, const gl::Command& cmd,
                           rt::SimTime t) override {
        breakpoint_handles.push_back(handle);
        events.push_back({"breakpoint", cmd, t});
    }
    void on_divergence(const gco::Divergence& d) override {
        events.push_back({"divergence", d.cmd, d.t});
    }
    void on_state_change(gco::EngineState, gco::EngineState to) override {
        events.push_back({std::string("state:") + gco::to_string(to), {}, 0});
    }
};

TEST(Transport, MockDrivesScriptedCommandsThroughAttach) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    auto mock = std::make_unique<MockTransport>(std::vector<gl::Command>{
        d.enter(d.s_idle), d.fire(d.t_go), d.enter(d.s_run), d.signal(42.5f)});
    auto* raw = mock.get();
    gl::Transport& attached = session.attach(std::move(mock));
    EXPECT_EQ(&attached, raw);
    EXPECT_TRUE(raw->opened_); // attach() opened the transport onto the engine

    raw->poll(session.engine(), 5 * rt::kMs);

    EXPECT_EQ(session.engine().stats().commands, 4u);
    EXPECT_EQ(raw->stats().commands, 4u);
    ASSERT_TRUE(session.engine().current_state(d.sm_id).has_value());
    EXPECT_EQ(*session.engine().current_state(d.sm_id), d.s_run);
    EXPECT_DOUBLE_EQ(*session.engine().signal_value(d.speed), 42.5);
    // Scene animated and trace recorded through the same stream.
    EXPECT_TRUE(session.scene().find_node(d.s_run.raw)->style.highlighted);
    EXPECT_EQ(session.trace().size(), 4u);
    EXPECT_TRUE(session.divergences().empty());
}

TEST(Transport, ControlPathRoutesPauseResumeStep) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    auto mock = std::make_unique<MockTransport>(std::vector<gl::Command>{});
    auto* raw = mock.get();
    session.attach(std::move(mock));
    session.set_step_actor("ctl");

    session.engine().add_breakpoint(
        {gco::Breakpoint::Kind::StateEnter, d.s_idle, "", true, false});
    session.engine().ingest(d.enter(d.s_idle), rt::kMs);
    EXPECT_EQ(raw->pauses_, 1u); // breakpoint paused through the transport

    session.engine().step(); // typed StepFilter reaches the transport
    ASSERT_EQ(raw->steps_.size(), 1u);
    EXPECT_EQ(raw->steps_[0], "ctl");

    session.engine().ingest(d.fire(d.t_go), 2 * rt::kMs); // re-pauses after one command
    EXPECT_EQ(raw->pauses_, 2u);
    session.engine().resume();
    EXPECT_EQ(raw->resumes_, 1u);
}

TEST(Transport, ScriptedTransportDeliversByTimestamp) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    auto scripted = std::make_unique<gl::ScriptedTransport>();
    scripted->push(d.enter(d.s_idle), rt::kMs);
    scripted->push(d.fire(d.t_go), 2 * rt::kMs);
    scripted->push(d.enter(d.s_run), 3 * rt::kMs);
    auto* raw = scripted.get();
    session.attach(std::move(scripted));

    raw->poll(session.engine(), rt::kMs);
    EXPECT_EQ(session.trace().size(), 1u); // only events with at <= now
    raw->poll(session.engine(), 10 * rt::kMs);
    EXPECT_EQ(session.trace().size(), 3u);
    EXPECT_EQ(*session.engine().current_state(d.sm_id), d.s_run);
}

TEST(Observer, AllObserversSeeTheSameStreamInOrder) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    auto& rec = static_cast<RecordingObserver&>(
        session.add_observer(std::make_unique<RecordingObserver>()));

    // One-shot breakpoint on entering run.
    int handle = session.engine().add_breakpoint(
        {gco::Breakpoint::Kind::StateEnter, d.s_run, "", true, /*one_shot=*/true});

    session.engine().ingest(d.enter(d.s_idle), 1 * rt::kMs);
    session.engine().ingest(d.fire(d.t_go), 2 * rt::kMs);
    session.engine().ingest(d.enter(d.s_run), 2 * rt::kMs);
    session.engine().ingest(d.enter(d.s_idle), 3 * rt::kMs); // jump run->idle: legal via t_stop

    // The recording observer saw: every command (4), reactions for each
    // bound command, the breakpoint hit, and the FSM state changes.
    std::vector<std::string> kinds;
    for (const auto& ev : rec.events) kinds.push_back(ev.kind);
    std::vector<std::string> expected{
        "command", "state:animating", "reaction", // enter idle
        "command", "reaction",                    // fire t_go
        "command", "reaction", "breakpoint", "state:paused", // enter run + one-shot
        "command", "reaction",                    // enter idle (paused engine still observes)
    };
    EXPECT_EQ(kinds, expected);

    // One-shot auto-removal: hit recorded once, breakpoint gone.
    ASSERT_EQ(rec.breakpoint_handles.size(), 1u);
    EXPECT_EQ(rec.breakpoint_handles[0], handle);
    EXPECT_EQ(session.engine().breakpoints().count(handle), 0u);
    EXPECT_EQ(session.engine().stats().breakpoints_hit, 1u);

    // Trace observer saw exactly the same commands, in the same order.
    ASSERT_EQ(session.trace().size(), 4u);
    std::vector<gl::Command> recorded_cmds;
    for (const auto& ev : rec.events)
        if (ev.kind == "command") recorded_cmds.push_back(ev.cmd);
    ASSERT_EQ(recorded_cmds.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(session.trace().events()[i].cmd, recorded_cmds[i]);

    // Scene observer reacted to the same stream: final highlight = idle.
    EXPECT_TRUE(session.scene().find_node(d.s_idle.raw)->style.highlighted);
    EXPECT_FALSE(session.scene().find_node(d.s_run.raw)->style.highlighted);
    // Divergence observer: clean run.
    EXPECT_TRUE(session.divergences().empty());
}

TEST(Observer, DivergenceReachesRecorderAndLogAlike) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    auto& rec = static_cast<RecordingObserver&>(
        session.add_observer(std::make_unique<RecordingObserver>()));

    session.engine().ingest(d.enter(d.s_run), rt::kMs); // design starts in idle
    ASSERT_EQ(session.divergences().size(), 1u);
    std::size_t divergence_events = 0;
    for (const auto& ev : rec.events)
        if (ev.kind == "divergence") ++divergence_events;
    EXPECT_EQ(divergence_events, 1u);
    EXPECT_EQ(session.engine().stats().divergences, 1u);
}

TEST(Observer, SecondSceneObserverAnimatesTwoScenes) {
    Demo d;
    gco::DebugSession session(d.sys.model());
    // An independently-abstracted second scene (e.g. a second client's
    // view), animated from the same engine event stream.
    auto second = gco::abstract_model(d.sys.model(), gco::comdes_default_mapping());
    session.add_observer(std::make_unique<gco::SceneAnimator>(d.sys.model(), second.scene));

    session.engine().ingest(d.enter(d.s_idle), 1 * rt::kMs);
    session.engine().ingest(d.fire(d.t_go), 2 * rt::kMs);
    session.engine().ingest(d.enter(d.s_run), 2 * rt::kMs);

    for (gmdf::render::Scene* scene : {&session.scene(), &second.scene}) {
        EXPECT_TRUE(scene->find_node(d.s_run.raw)->style.highlighted);
        EXPECT_FALSE(scene->find_node(d.s_idle.raw)->style.highlighted);
        EXPECT_TRUE(scene->find_edge(d.t_go.raw)->style.highlighted);
    }
}

TEST(Observer, RemoveObserverStopsDelivery) {
    Demo d;
    gco::DebuggerEngine engine(d.sys.model());
    RecordingObserver rec;
    engine.add_observer(&rec);
    engine.ingest(d.enter(d.s_idle), rt::kMs);
    std::size_t seen = rec.events.size();
    EXPECT_TRUE(engine.remove_observer(&rec));
    EXPECT_FALSE(engine.remove_observer(&rec));
    engine.ingest(d.fire(d.t_go), 2 * rt::kMs);
    EXPECT_EQ(rec.events.size(), seen);
}

TEST(Builder, FluentConstructionEndToEnd) {
    Demo d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::active());
    (void)loaded;

    auto rec = std::make_unique<RecordingObserver>();
    auto* rec_raw = rec.get();
    auto session = gco::SessionBuilder(d.sys.model())
                       .bindings(gco::CommandBindingTable::defaults())
                       .highlight_half_life(50 * rt::kMs)
                       .step_actor("ctl")
                       .breakpoint({gco::Breakpoint::Kind::StateEnter, d.s_run, "", true,
                                    /*one_shot=*/true})
                       .observer(std::move(rec))
                       .active_uart(target)
                       .build();

    target.start();
    target.run_for(200 * rt::kMs);

    EXPECT_EQ(session->transports().size(), 1u);
    EXPECT_STREQ(session->transports()[0]->name(), "active-uart");
    EXPECT_GT(session->engine().stats().commands, 0u);
    EXPECT_FALSE(rec_raw->events.empty());
    // The breakpoint fired (machine enters run on the first scan) and
    // paused the simulated target through the transport's control path.
    EXPECT_EQ(session->engine().stats().breakpoints_hit, 1u);
    EXPECT_EQ(session->engine().state(), gco::EngineState::Paused);
    EXPECT_TRUE(target.paused());
    EXPECT_EQ(session->engine().step_filter().actor, "ctl");
    EXPECT_EQ(session->divergences().size(), 0u);
}

TEST(Builder, BuildTwiceThrows) {
    Demo d;
    gco::SessionBuilder b(d.sys.model());
    auto s1 = b.build();
    EXPECT_NE(s1, nullptr);
    EXPECT_THROW((void)b.build(), std::logic_error);
}

TEST(Builder, PassiveJtagConvenience) {
    Demo d;
    rt::Target target;
    auto loaded = gg::load_system(target, d.sys.model(), gg::InstrumentOptions::passive());
    auto session = gco::SessionBuilder(d.sys.model())
                       .passive_jtag(target, loaded, 2 * rt::kMs)
                       .build();
    target.start();
    target.run_for(200 * rt::kMs);

    EXPECT_EQ(target.total_instr_cycles(), 0u); // passive stays free
    EXPECT_STREQ(session->transports()[0]->name(), "passive-jtag");
    EXPECT_GT(session->transports()[0]->stats().polls, 0u);
    ASSERT_TRUE(session->engine().current_state(d.sm_id).has_value());
}

} // namespace
