// Tests for the network debug service: frame/line codec round-trips
// including torn and oversized input, the proto-layer request/response
// guards the wire relies on, and a live loopback server — golden
// quickstart transcript over TCP, multi-client session isolation with
// ACL refusals, slow-client backpressure with drop accounting, graceful
// drain of client-opened sessions, and structured protocol errors for
// malformed frames.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "hub/controller.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "proto/message.hpp"
#include "proto/script.hpp"

namespace gh = gmdf::hub;
namespace gn = gmdf::net;
namespace gp = gmdf::proto;

namespace {

// ---- frame codec ------------------------------------------------------------

TEST(FrameCodec, EncodeDecodeRoundTrip) {
    gn::FrameReader reader;
    for (auto type : {gn::FrameType::Hello, gn::FrameType::Request,
                      gn::FrameType::Response, gn::FrameType::Event,
                      gn::FrameType::Done, gn::FrameType::Error}) {
        reader.feed(gn::encode_frame(type, "payload text"));
        gn::Frame frame;
        ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
        EXPECT_EQ(frame.type, type);
        EXPECT_EQ(frame.payload, "payload text");
    }
    gn::Frame frame;
    EXPECT_EQ(reader.next(frame), gn::FrameReader::Status::NeedMore);
}

TEST(FrameCodec, TornFrameReassemblesByteByByte) {
    const std::string wire = gn::encode_frame(gn::FrameType::Request, "query state");
    gn::FrameReader reader;
    gn::Frame frame;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        reader.feed(std::string_view(wire).substr(i, 1));
        ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::NeedMore)
            << "frame completed " << (wire.size() - 1 - i) << " bytes early";
    }
    reader.feed(std::string_view(wire).substr(wire.size() - 1));
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.type, gn::FrameType::Request);
    EXPECT_EQ(frame.payload, "query state");
}

TEST(FrameCodec, BackToBackFramesDecodeFromOneFeed) {
    gn::FrameReader reader;
    reader.feed(gn::encode_frame(gn::FrameType::Request, "a") +
                gn::encode_frame(gn::FrameType::Request, "b"));
    gn::Frame frame;
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.payload, "a");
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.payload, "b");
    EXPECT_EQ(reader.next(frame), gn::FrameReader::Status::NeedMore);
}

TEST(FrameCodec, OversizedFrameIsStickyError) {
    gn::FrameReader reader(/*max_payload=*/16);
    reader.feed(gn::encode_frame(gn::FrameType::Request,
                                 std::string(64, 'x')));
    gn::Frame frame;
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Error);
    EXPECT_NE(reader.error().find("16"), std::string::npos) << reader.error();
    // Sticky: the stream position is lost for good.
    reader.feed(gn::encode_frame(gn::FrameType::Request, "ok"));
    EXPECT_EQ(reader.next(frame), gn::FrameReader::Status::Error);
}

TEST(FrameCodec, ZeroLengthAndUnknownTypeAreFatal) {
    {
        gn::FrameReader reader;
        reader.feed(std::string_view("\0\0\0\0", 4)); // length 0: no type byte
        gn::Frame frame;
        EXPECT_EQ(reader.next(frame), gn::FrameReader::Status::Error);
    }
    {
        gn::FrameReader reader;
        std::string wire = gn::encode_frame(gn::FrameType::Request, "x");
        wire[4] = 'Z'; // not a frame type
        reader.feed(wire);
        gn::Frame frame;
        EXPECT_EQ(reader.next(frame), gn::FrameReader::Status::Error);
    }
}

TEST(FrameCodec, HelloPayloadRoundTrip) {
    EXPECT_EQ(gn::parse_hello(gn::hello_payload()), gn::kProtocolVersion);
    EXPECT_EQ(gn::parse_hello("gmdf-net 7"), 7);
    EXPECT_EQ(gn::parse_hello("not a hello"), -1);
    EXPECT_EQ(gn::parse_hello("gmdf-net "), -1);
}

// ---- line codec -------------------------------------------------------------

TEST(LineCodec, SplitLinesReassembleAcrossFeeds) {
    gn::LineReader reader;
    std::string line;
    reader.feed("inf");
    EXPECT_EQ(reader.next(line), gn::LineReader::Status::NeedMore);
    reader.feed("o\r\nquery ");
    ASSERT_EQ(reader.next(line), gn::LineReader::Status::Ready);
    EXPECT_EQ(line, "info"); // '\r' stripped with the terminator
    EXPECT_EQ(reader.next(line), gn::LineReader::Status::NeedMore);
    reader.feed("state\n");
    ASSERT_EQ(reader.next(line), gn::LineReader::Status::Ready);
    EXPECT_EQ(line, "query state");
}

TEST(LineCodec, OversizedLineIsStickyError) {
    gn::LineReader reader(/*max_line=*/8);
    reader.feed(std::string(9, 'a')); // no newline in sight and over budget
    std::string line;
    ASSERT_EQ(reader.next(line), gn::LineReader::Status::Error);
    reader.feed("\nshort\n");
    EXPECT_EQ(reader.next(line), gn::LineReader::Status::Error);
}

// ---- proto guards the wire relies on ----------------------------------------

TEST(ProtoGuards, ParseRequestRejectsOversizedLine) {
    auto over = gp::parse_request(std::string(gp::kMaxRequestLine + 1, 'a'));
    ASSERT_FALSE(over.ok());
    EXPECT_NE(over.error.find("exceeds"), std::string::npos) << over.error;
    EXPECT_TRUE(gp::parse_request(std::string(gp::kMaxRequestLine, 'a')).ok());
}

TEST(ProtoGuards, ParseResponseRoundTrips) {
    auto ok = gp::Response::make_ok({"model blinker", "elements 14"});
    auto parsed = gp::parse_response(gp::format_response(ok));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->ok());
    EXPECT_EQ(parsed->body, ok.body);
    EXPECT_EQ(gp::format_response(*parsed), gp::format_response(ok));

    auto err = gp::Response::make_error(gp::ErrorCode::BadState, "engine is busy");
    parsed = gp::parse_response(gp::format_response(err));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->code, gp::ErrorCode::BadState);
    EXPECT_EQ(parsed->message, "engine is busy");
    EXPECT_EQ(gp::format_response(*parsed), gp::format_response(err));
}

TEST(ProtoGuards, ParseResponseRejectsForeignText) {
    EXPECT_FALSE(gp::parse_response("").has_value());
    EXPECT_FALSE(gp::parse_response("ok").has_value()); // missing newline
    EXPECT_FALSE(gp::parse_response("yes\n").has_value());
    EXPECT_FALSE(gp::parse_response("ok\nbare body line\n").has_value());
    EXPECT_FALSE(gp::parse_response("error not-a-code: boom\n").has_value());
    EXPECT_FALSE(gp::parse_response("error bad-state missing colon\n").has_value());
}

// ---- live loopback server ---------------------------------------------------

// Hub + server + poll loop on a background thread. The loop owns the
// hub while running (it is single-threaded by design), so tests talk to
// it exclusively through sockets and only inspect server internals
// after stop() has joined the thread.
class LoopbackServer {
public:
    explicit LoopbackServer(gn::ServerConfig config = {},
                            const std::string& seed = "blinker") {
        EXPECT_NE(hub.open(seed, seed), nullptr);
        server.emplace(hub, std::move(config));
        std::string error;
        if (!server->start(&error)) ADD_FAILURE() << "start: " << error;
        thread = std::thread([this] { server->run(stop_flag); });
    }

    ~LoopbackServer() { join(); }

    /// Stops the poll loop; server state is safe to inspect afterwards.
    void join() {
        if (!thread.joinable()) return;
        stop_flag.store(true);
        thread.join();
    }

    [[nodiscard]] std::uint16_t port() const { return server->port(); }

    std::unique_ptr<gn::Channel> dial() {
        std::string error;
        auto channel = gn::Channel::connect("127.0.0.1", port(), &error);
        EXPECT_NE(channel, nullptr) << error;
        return channel;
    }

    gh::HubController hub;
    std::optional<gn::Server> server;
    std::atomic<bool> stop_flag{false};
    std::thread thread;
};

int raw_dial(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    timeval tv{5, 0}; // a hung read fails the test instead of the run
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

void raw_send(int fd, std::string_view bytes) {
    while (!bytes.empty()) {
        ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << std::strerror(errno);
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
}

/// Reads until the connection closes (or the rcv timeout trips).
std::string raw_drain(int fd) {
    std::string out;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
}

/// Reads until `out` contains `until` (or the rcv timeout trips).
std::string raw_read_until(int fd, std::string_view until) {
    std::string out;
    char chunk[4096];
    while (out.find(until) == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
}

TEST(NetServer, QuickstartTranscriptOverLoopbackIsByteIdentical) {
    LoopbackServer srv;
    auto channel = srv.dial();
    ASSERT_NE(channel, nullptr);

    std::ifstream script(std::string(GMDF_SOURCE_DIR) + "/examples/quickstart.gds");
    ASSERT_TRUE(script) << "missing examples/quickstart.gds";
    std::ostringstream out;
    auto result = gp::run_script(*channel, script, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_TRUE(result.quit);

    std::ifstream golden_file(std::string(GMDF_SOURCE_DIR) +
                              "/tests/golden/quickstart_transcript.txt");
    ASSERT_TRUE(golden_file) << "missing tests/golden/quickstart_transcript.txt";
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    EXPECT_EQ(out.str(), golden.str());

    srv.join();
    EXPECT_EQ(srv.server->stats().accepted, 1u);
    EXPECT_EQ(srv.server->stats().protocol_errors, 0u);
}

TEST(NetServer, MultiClientSessionIsolationAndAcl) {
    LoopbackServer srv;
    auto a = srv.dial();
    auto b = srv.dial();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    // A opens a second session and becomes current on it; B must stay
    // on the seed.
    auto resp = a->execute_line("session open turntable tt");
    ASSERT_TRUE(resp.ok()) << resp.message;
    resp = a->execute_line("session list");
    ASSERT_TRUE(resp.ok());
    EXPECT_NE(resp.body[2].find("* 2 tt"), std::string::npos) << resp.body[2];
    resp = b->execute_line("session list");
    ASSERT_TRUE(resp.ok());
    EXPECT_NE(resp.body[1].find("* 1 blinker"), std::string::npos) << resp.body[1];

    // B restricts itself to the seed: addressing or attaching to tt is
    // refused until the allowlist is cleared.
    ASSERT_TRUE(b->execute_line("acl allow blinker").ok());
    resp = b->execute_line("@tt info");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadState);
    EXPECT_NE(resp.message.find("acl"), std::string::npos) << resp.message;
    resp = b->execute_line("attach tt");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadState);
    resp = b->execute_line("acl show");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.body[0], "acl blinker");

    // A is unrestricted and unaffected.
    EXPECT_TRUE(a->execute_line("@tt info").ok());

    ASSERT_TRUE(b->execute_line("acl clear").ok());
    EXPECT_TRUE(b->execute_line("@tt info").ok());
    EXPECT_TRUE(b->execute_line("attach tt").ok());
}

TEST(NetServer, GracefulDrainClosesOnlyClientOpenedSessions) {
    LoopbackServer srv;
    auto b = srv.dial();
    {
        auto a = srv.dial();
        ASSERT_NE(a, nullptr);
        ASSERT_TRUE(a->execute_line("session open turntable extra").ok());
        auto listed = b->execute_line("session list");
        ASSERT_TRUE(listed.ok());
        EXPECT_EQ(listed.body[0], "sessions 2");
    } // A disconnects without `session close`: the server must release it

    // The poll loop notices the EOF on its own schedule.
    std::string sessions;
    for (int i = 0; i < 100; ++i) {
        auto listed = b->execute_line("session list");
        ASSERT_TRUE(listed.ok());
        sessions = listed.body[0];
        if (sessions == "sessions 1") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(sessions, "sessions 1");
    // The seed — which A did not open — survived.
    auto info = b->execute_line("info");
    ASSERT_TRUE(info.ok());
    EXPECT_NE(info.body[0].find("blinker"), std::string::npos) << info.body[0];
}

TEST(NetServer, QuitFlushesTheGoodbyeThenCloses) {
    LoopbackServer srv;
    auto channel = srv.dial();
    auto resp = channel->execute_line("quit");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.body[0], "bye");
    (void)channel->drain_event_lines();

    // The server drained and closed; the next request cannot travel.
    resp = channel->execute_line("info");
    EXPECT_EQ(resp.code, gp::ErrorCode::Internal);
    EXPECT_NE(resp.message.find("network"), std::string::npos) << resp.message;

    srv.join();
    EXPECT_EQ(srv.server->active_connections(), 0u);
    EXPECT_EQ(srv.server->stats().closed, 1u);
}

TEST(NetServer, SlowClientBackpressureDropsOldestEvents) {
    gn::ServerConfig config;
    config.event_queue_capacity = 2;
    config.write_high_water = 0; // idle fan-out permanently paused: every
                                 // client is a worst-case slow client
    LoopbackServer srv(config);
    auto active = srv.dial();
    auto slow = srv.dial(); // connected, subscribed, never reads

    // The breakpoint run raises three event lines, one over capacity:
    // each connection parks two and drops the oldest. `active` gets its
    // two force-flushed with the response; `slow` keeps them parked.
    ASSERT_TRUE(active->execute_line("break add state on").ok());
    auto resp = active->execute_line("run 1000");
    ASSERT_TRUE(resp.ok()) << resp.message;
    auto events = active->drain_event_lines();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[1].find("state-change"), std::string::npos) << events[1];

    auto stats = active->execute_line("session stats net");
    ASSERT_TRUE(stats.ok()) << stats.message;
    bool saw_slow_row = false;
    for (const std::string& line : stats.body) {
        if (line.rfind("connection 2 ", 0) != 0) continue;
        saw_slow_row = true;
        EXPECT_NE(line.find("pending-events=2"), std::string::npos) << line;
        EXPECT_NE(line.find("events-dropped=1"), std::string::npos) << line;
    }
    EXPECT_TRUE(saw_slow_row);

    srv.join();
    EXPECT_EQ(srv.server->stats().events_dropped, 2u); // one per connection
    EXPECT_EQ(srv.server->stats().events_sent, 2u);    // active's flush only
}

TEST(NetServer, MalformedFrameGetsStructuredErrorThenClose) {
    LoopbackServer srv;
    int fd = raw_dial(srv.port());
    raw_send(fd, std::string(gn::kMagic) +
                     gn::encode_frame(gn::FrameType::Hello, gn::hello_payload()));

    // Claim a payload far over the server's 1 MiB ceiling.
    const std::uint32_t huge = 8u << 20;
    char header[4] = {static_cast<char>(huge & 0xff),
                      static_cast<char>((huge >> 8) & 0xff),
                      static_cast<char>((huge >> 16) & 0xff),
                      static_cast<char>((huge >> 24) & 0xff)};
    raw_send(fd, std::string_view(header, sizeof(header)));

    gn::FrameReader reader;
    reader.feed(raw_drain(fd)); // hello echo + error frame, then EOF
    gn::Frame frame;
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.type, gn::FrameType::Hello);
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.type, gn::FrameType::Error);
    EXPECT_NE(frame.payload.find("limit"), std::string::npos) << frame.payload;
    ::close(fd);

    srv.join();
    EXPECT_EQ(srv.server->stats().protocol_errors, 1u);
    EXPECT_EQ(srv.server->active_connections(), 0u);
}

TEST(NetServer, WrongHelloVersionIsRefused) {
    LoopbackServer srv;
    int fd = raw_dial(srv.port());
    raw_send(fd, std::string(gn::kMagic) +
                     gn::encode_frame(gn::FrameType::Hello, "gmdf-net 99"));
    gn::FrameReader reader;
    reader.feed(raw_drain(fd));
    gn::Frame frame;
    ASSERT_EQ(reader.next(frame), gn::FrameReader::Status::Ready);
    EXPECT_EQ(frame.type, gn::FrameType::Error);
    EXPECT_NE(frame.payload.find("version"), std::string::npos) << frame.payload;
    ::close(fd);
}

TEST(NetServer, LineCodecServesSplitRequestsAndComments) {
    LoopbackServer srv;
    int fd = raw_dial(srv.port());

    // A torn request: the verb arrives across two segments and poll
    // wakeups. Blank lines and comments are script-style no-ops.
    raw_send(fd, "inf");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    raw_send(fd, "o\n# a comment\n\n");
    std::string text = raw_read_until(fd, "transports");
    EXPECT_EQ(text.rfind("ok\n", 0), 0u) << text;
    EXPECT_NE(text.find("| model blinker_system"), std::string::npos) << text;

    raw_send(fd, "no-such-verb\nquit\n");
    text = raw_drain(fd); // error response, goodbye, then EOF
    EXPECT_NE(text.find("error unknown-verb:"), std::string::npos) << text;
    EXPECT_NE(text.find("| bye"), std::string::npos) << text;
    ::close(fd);

    srv.join();
    EXPECT_EQ(srv.server->stats().requests, 3u); // info, bad verb, quit
}

TEST(NetServer, StatsVerbWithoutServerIsBadState) {
    gh::HubController hub;
    ASSERT_NE(hub.open("blinker", "blinker"), nullptr);
    auto resp = hub.execute_line("session stats net");
    EXPECT_EQ(resp.code, gp::ErrorCode::BadState);
    EXPECT_NE(resp.message.find("no network server"), std::string::npos)
        << resp.message;
}

} // namespace
