// Fault hunt — detecting implementation errors with the model debugger.
//
// Paper §II: a model debugger finds two kinds of bugs — design errors
// (model vs. requirements) and implementation errors (code vs. model,
// introduced by transformation or hybrid coding). This example injects
// each transformation fault into the *generated code* (a mutated clone of
// the model) while the debugger keeps the *design model*, then reports
// which faults the consistency checker localizes and how.
#include <iostream>

#include "codegen/faults.hpp"
#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

namespace {

struct App {
    comdes::SystemBuilder sys{"elevator"};
    meta::ObjectId call_sig, at_floor, door_sig;

    App() {
        call_sig = sys.add_signal("call", "bool_");
        at_floor = sys.add_signal("at_floor", "bool_");
        door_sig = sys.add_signal("door", "real_");
        auto a = sys.add_actor("elevator_ctl", 10'000);
        auto sm = a.add_sm("lift", {"call", "arrived"}, {"move", "door"});
        auto idle = sm.add_state("idle", {{"move", "0"}, {"door", "1"}});
        auto moving = sm.add_state("moving", {{"move", "1"}, {"door", "0"}});
        auto open = sm.add_state("doors_open", {{"move", "0"}, {"door", "1"}});
        sm.add_transition(idle, moving, "call", "!arrived");
        sm.add_transition(moving, open, "arrived");
        sm.add_transition(open, idle, "", "!call");
        a.bind_input(call_sig, sm.sm_id(), "call");
        a.bind_input(at_floor, sm.sm_id(), "arrived");
        a.bind_output(sm.sm_id(), "door", door_sig);
    }
};

} // namespace

int main() {
    std::cout << "fault injection sweep: design model vs. mutated generated code\n\n";

    for (auto kind : codegen::all_fault_kinds()) {
        App app;
        meta::Model mutated = app.sys.model().clone();
        auto report = codegen::inject_fault(mutated, kind, /*seed=*/23);
        if (!report.has_value()) {
            std::cout << codegen::to_string(kind) << ": not applicable to this model\n";
            continue;
        }

        rt::Target target;
        auto loaded =
            codegen::load_system(target, mutated, codegen::InstrumentOptions::active());
        core::DebugSession session(app.sys.model()); // debugger holds the DESIGN
        session.attach(core::make_active_uart_transport(target));
        target.start();

        // Exercise the elevator: call, arrive, release.
        auto pub = [&](meta::ObjectId sig, double v, rt::SimTime at) {
            target.sim().at(at, [&target, &loaded, sig, v] {
                target.node(0).publish_signal(loaded.signal_index.at(sig.raw), v);
            });
        };
        pub(app.call_sig, 1.0, 50 * rt::kMs);
        pub(app.at_floor, 1.0, 200 * rt::kMs);
        pub(app.call_sig, 0.0, 350 * rt::kMs);
        pub(app.at_floor, 0.0, 360 * rt::kMs);
        target.run_for(600 * rt::kMs);

        std::cout << codegen::to_string(kind) << ":\n";
        std::cout << "  injected: " << report->description << "\n";
        const auto& divs = session.divergences();
        if (divs.empty()) {
            std::cout << "  debugger: no structural divergence (fault changes values, "
                         "visible in trace/timing diagram)\n";
        } else {
            std::cout << "  debugger: " << divs.size() << " divergence(s); first at t="
                      << divs[0].t / rt::kMs << "ms: " << divs[0].message << "\n";
        }
    }

    std::cout << "\nStructural faults (wrong transition target / initial state) are\n"
                 "localized by the state-sequence checker; value-level faults show\n"
                 "up in the recorded trace, timing diagram, and signal labels.\n";
    return 0;
}
