// Passive JTAG debugging — the same application observed two ways.
//
// The paper argues the JTAG (IEEE 1149.1) interface makes the command
// interface free on the target: the debugger pulls RAM words through the
// TAP while the CPU runs unmodified code. This example runs one
// application twice — actively instrumented vs. passively watched — and
// prints the measured target-side cost of each, plus the passive
// detection latency characteristics.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

namespace {

struct App {
    comdes::SystemBuilder sys{"pump_station"};
    meta::ObjectId level, pump, sm_id;

    App() {
        level = sys.add_signal("level", "real_", 0.2);
        pump = sys.add_signal("pump", "bool_");
        auto a = sys.add_actor("pump_ctl", 5'000); // 200 Hz
        auto sm = a.add_sm("hysteresis", {"lo", "hi"}, {"on"});
        auto s_off = sm.add_state("pump_off", {{"on", "0"}});
        auto s_on = sm.add_state("pump_on", {{"on", "1"}});
        sm.add_transition(s_off, s_on, "hi");
        sm.add_transition(s_on, s_off, "lo");
        sm_id = sm.sm_id();
        auto hi = a.add_basic("hi_cmp", "gt_", {0.8});
        auto lo = a.add_basic("lo_cmp", "lt_", {0.3});
        a.bind_input(level, hi, "in");
        a.bind_input(level, lo, "in");
        a.connect(hi, "out", sm_id, "hi");
        a.connect(lo, "out", sm_id, "lo");
        a.bind_output(sm_id, "on", pump);
    }
};

// Runs the app for `duration`, returns (instr cycles, commands observed).
struct RunResult {
    std::uint64_t instr_cycles = 0;
    std::uint64_t commands = 0;
    double cpu_util = 0.0;
};

RunResult run(bool passive, rt::SimTime duration) {
    App app;
    rt::Target target;
    auto opts = passive ? codegen::InstrumentOptions::passive()
                        : codegen::InstrumentOptions::active();
    auto loaded = codegen::load_system(target, app.sys.model(), opts);
    core::DebugSession session(app.sys.model());
    if (passive)
        session.attach(core::make_passive_jtag_transport(target, loaded, app.sys.model(),
                                                         /*poll_period=*/2 * rt::kMs));
    else
        session.attach(core::make_active_uart_transport(target));

    // Environment: tank level oscillates, forcing pump transitions.
    double t_sec = 0.0;
    target.sim().every(5 * rt::kMs, 5 * rt::kMs, [&, loaded, level = app.level]() mutable {
        t_sec += 0.005;
        double level_v = 0.55 + 0.45 * std::sin(t_sec * 2.0);
        target.node(0).publish_signal(loaded.signal_index.at(level.raw), level_v);
    });

    target.start();
    target.run_for(duration);
    return {target.total_instr_cycles(), session.engine().stats().commands,
            target.node(0).cpu_utilization(duration)};
}

} // namespace

int main() {
    const rt::SimTime duration = 5 * rt::kSec;
    auto active = run(/*passive=*/false, duration);
    auto passive = run(/*passive=*/true, duration);

    std::cout << "pump station, 5 s simulated, 200 Hz control task\n\n";
    std::cout << std::left << std::setw(26) << "metric" << std::setw(16) << "active(RS-232)"
              << std::setw(16) << "passive(JTAG)" << "\n";
    std::cout << std::setw(26) << "target instr. cycles" << std::setw(16)
              << active.instr_cycles << std::setw(16) << passive.instr_cycles << "\n";
    std::cout << std::setw(26) << "commands at debugger" << std::setw(16) << active.commands
              << std::setw(16) << passive.commands << "\n";
    std::cout << std::setw(26) << "target CPU utilization" << std::setw(16)
              << active.cpu_util << std::setw(16) << passive.cpu_util << "\n\n";

    std::cout << "The passive path consumes ZERO target cycles (the paper's central\n"
                 "claim for JTAG); the active path pays "
              << active.instr_cycles << " cycles of 'extra\nfunctional code' "
              << "but observes every event (" << active.commands << " vs "
              << passive.commands << " commands:\npolling aliases fast state flips).\n";
    return 0;
}
