// Turntable control — the COMDES production-cell demo, distributed over
// two nodes, debugged actively with a model-level breakpoint and
// step-wise execution.
//
// Node 0 runs the controller actor (state machine sequencing the drill
// cycle); node 1 runs the drive actor (dataflow: ramped motor command).
// The debugger pauses the whole target when the machine enters
// 'drilling', then steps release-by-release — exactly the paper's
// "model-level step-wise execution and breakpoint functionality".
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

int main() {
    comdes::SystemBuilder sys("turntable");
    auto part_present = sys.add_signal("part_present", "bool_");
    auto at_position = sys.add_signal("at_position", "bool_");
    auto rotate_cmd = sys.add_signal("rotate_cmd", "real_");
    auto drill_cmd = sys.add_signal("drill_cmd", "bool_");
    auto motor = sys.add_signal("motor", "real_");

    // Controller actor (node 0): sequencing state machine.
    auto ctl = sys.add_actor("controller", 20'000, 0, /*node=*/0);
    auto sm = ctl.add_sm("sequencer", {"part", "in_pos"}, {"rotate", "drill"});
    auto s_idle = sm.add_state("idle", {{"rotate", "0"}, {"drill", "0"}});
    auto s_rotating = sm.add_state("rotating", {{"rotate", "0.8"}});
    auto s_drilling = sm.add_state("drilling", {{"rotate", "0"}, {"drill", "1"}});
    auto s_retract = sm.add_state("retracting", {{"drill", "0"}});
    sm.add_transition(s_idle, s_rotating, "part");
    sm.add_transition(s_rotating, s_drilling, "in_pos");
    auto t_done = sm.add_transition(s_drilling, s_retract); // unconditional: next scan
    sm.add_transition(s_retract, s_idle, "", "!part");
    ctl.bind_input(part_present, sm.sm_id(), "part");
    ctl.bind_input(at_position, sm.sm_id(), "in_pos");
    ctl.bind_output(sm.sm_id(), "rotate", rotate_cmd);
    ctl.bind_output(sm.sm_id(), "drill", drill_cmd);

    // Drive actor (node 1): slew-rate-limited motor command.
    auto drive = sys.add_actor("drive", 10'000, 0, /*node=*/1);
    auto ramp = drive.add_basic("ramp", "ratelimit_", {2.0}); // 2 units/s
    drive.bind_input(rotate_cmd, ramp, "in");
    drive.bind_output(ramp, "out", motor);

    auto ds = comdes::validate_comdes(sys.model());
    if (!meta::is_clean(ds)) {
        for (const auto& d : ds) std::cerr << d.to_string() << "\n";
        return 1;
    }

    rt::Target target;
    target.set_network_latency(500 * rt::kUs);
    auto loaded = codegen::load_system(target, sys.model(),
                                       codegen::InstrumentOptions::active());

    core::DebugSession session(sys.model());
    session.attach(core::make_active_uart_transport(target));
    session.set_step_actor("controller"); // step = one controller activation

    // Model-level breakpoint: pause everything when drilling starts.
    session.engine().add_breakpoint(
        {core::Breakpoint::Kind::StateEnter, s_drilling, "", true, false});

    target.start();
    // Environment: a part arrives, then the table reaches position.
    target.sim().at(50 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(part_present.raw), 1.0);
    });
    target.sim().at(200 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(at_position.raw), 1.0);
    });

    target.run_for(400 * rt::kMs);

    std::cout << "=== breakpoint hit: target halted in state 'drilling' ===\n";
    std::cout << "engine state: " << core::to_string(session.engine().state())
              << ", target paused: " << (target.paused() ? "yes" : "no") << "\n";
    std::cout << session.render_ascii() << "\n";

    // Step-wise execution: three single task releases (session.step()
    // routes through the protocol dispatcher — same path as gmdf_dbg).
    for (int i = 0; i < 3; ++i) {
        session.step();
        target.run_for(100 * rt::kMs);
        auto cur = session.engine().current_state(sm.sm_id());
        std::cout << "after step " << i + 1 << ": state '"
                  << (cur ? sys.model().at(*cur).name() : "?") << "'\n";
    }

    session.resume();
    target.run_for(300 * rt::kMs);

    std::cout << "\n=== timing diagram (controller + signals) ===\n";
    std::cout << session.timing_diagram().render_ascii(64) << "\n";
    std::cout << "motor command at node 1: "
              << target.node(1).signal(loaded.signal_index.at(motor.raw)) << "\n";
    std::cout << "divergences: " << session.divergences().size()
              << " (clean run)\n";
    (void)t_done;
    return 0;
}
