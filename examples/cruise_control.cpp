// Cruise control — modal FB + PID dataflow, with a signal-predicate
// breakpoint and VCD export of the recorded trace.
//
// The controller is a modal FB: mode 0 = coasting (output 0), mode 1 =
// cruising (PID holds the speed setpoint against a simulated vehicle).
// The debugger watches the speed and breaks when it overshoots.
#include <fstream>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/metamodel.hpp"
#include "comdes/validate.hpp"
#include "core/session.hpp"
#include "core/transports.hpp"

using namespace gmdf;

namespace {

// Builds a modal FB with coast/cruise modes around a PID.
meta::ObjectId build_modal(comdes::SystemBuilder& sys, comdes::ActorBuilder& actor) {
    const auto& c = comdes::comdes_metamodel();
    auto& m = sys.model();
    auto& modal = m.create(*c.modal_fb);
    modal.set_attr("name", meta::Value("cruise"));
    modal.set_attr("selector_pin", meta::Value("mode"));

    auto add_map = [&](meta::MObject& mode, const char* outer, const char* fb,
                       const char* pin, const char* dir) {
        auto& pm = m.create(*c.port_map);
        pm.set_attr("outer_pin", meta::Value(outer));
        pm.set_attr("inner_fb", meta::Value(fb));
        pm.set_attr("inner_pin", meta::Value(pin));
        pm.set_attr("direction", meta::Value(dir));
        mode.add_ref("port_maps", pm.id());
    };

    // Mode 0: coast — throttle forced to zero.
    auto& coast = m.create(*c.mode);
    coast.set_attr("name", meta::Value("coast"));
    coast.set_attr("value", meta::Value(0));
    auto& coast_net = m.create(*c.network);
    coast.set_ref("network", coast_net.id());
    auto& zero = m.create(*c.basic_fb);
    zero.set_attr("name", meta::Value("zero"));
    zero.set_attr("kind", meta::Value("const_"));
    zero.set_attr("params", meta::Value(meta::Value::List{meta::Value(0.0)}));
    coast_net.add_ref("blocks", zero.id());
    add_map(coast, "throttle", "zero", "out", "out");
    modal.add_ref("modes", coast.id());

    // Mode 1: cruise — PID from setpoint/speed to throttle.
    auto& cruise = m.create(*c.mode);
    cruise.set_attr("name", meta::Value("cruise_on"));
    cruise.set_attr("value", meta::Value(1));
    auto& cruise_net = m.create(*c.network);
    cruise.set_ref("network", cruise_net.id());
    auto& pid = m.create(*c.basic_fb);
    pid.set_attr("name", meta::Value("pid"));
    pid.set_attr("kind", meta::Value("pid_"));
    pid.set_attr("params",
                 meta::Value(meta::Value::List{meta::Value(0.8), meta::Value(0.4),
                                               meta::Value(0.0), meta::Value(0.0),
                                               meta::Value(1.0)}));
    cruise_net.add_ref("blocks", pid.id());
    add_map(cruise, "setpoint", "pid", "sp", "in");
    add_map(cruise, "speed", "pid", "pv", "in");
    add_map(cruise, "throttle", "pid", "out", "out");
    modal.add_ref("modes", cruise.id());

    m.at(actor.network_id()).add_ref("blocks", modal.id());
    return modal.id();
}

} // namespace

int main() {
    comdes::SystemBuilder sys("cruise_system");
    auto sp = sys.add_signal("setpoint", "real_", 25.0);
    auto speed = sys.add_signal("speed", "real_", 0.0);
    auto mode = sys.add_signal("mode", "int_", 0.0);
    auto throttle = sys.add_signal("throttle", "real_", 0.0);

    auto actor = sys.add_actor("cruise_ctl", 20'000); // 50 Hz
    auto modal_id = build_modal(sys, actor);
    actor.bind_input(mode, modal_id, "mode");
    actor.bind_input(sp, modal_id, "setpoint");
    actor.bind_input(speed, modal_id, "speed");
    actor.bind_output(modal_id, "throttle", throttle);

    auto ds = comdes::validate_comdes(sys.model());
    if (!meta::is_clean(ds)) {
        for (const auto& d : ds) std::cerr << d.to_string() << "\n";
        return 1;
    }

    rt::Target target;
    auto loaded = codegen::load_system(target, sys.model(),
                                       codegen::InstrumentOptions::active());

    core::DebugSession session(sys.model());
    session.attach(core::make_active_uart_transport(target));
    // Break when the measured speed exceeds the setpoint by 10%.
    session.engine().add_breakpoint(
        {core::Breakpoint::Kind::SignalPredicate, {}, "speed > 27.5", true, true});

    // Simulated vehicle: first-order response to throttle, sampled at 50 Hz.
    double vehicle_speed = 0.0;
    target.sim().every(20 * rt::kMs, 20 * rt::kMs, [&] {
        double u = target.node(0).signal(loaded.signal_index.at(throttle.raw));
        vehicle_speed += (40.0 * u - vehicle_speed) * 0.02 / 1.5; // tau = 1.5 s
        target.node(0).publish_signal(loaded.signal_index.at(speed.raw), vehicle_speed);
    });

    target.start();
    // Engage cruise after 0.5 s.
    target.sim().at(500 * rt::kMs, [&] {
        target.node(0).publish_signal(loaded.signal_index.at(mode.raw), 1.0);
    });
    target.run_for(10 * rt::kSec);

    std::cout << "mode changes observed: "
              << session.trace().filter(link::Cmd::ModeChange).size() << "\n";
    std::cout << "final speed: " << vehicle_speed << " (setpoint 25)\n";
    std::cout << "breakpoint hits (overshoot): " << session.engine().stats().breakpoints_hit
              << "\n";
    if (session.engine().state() == core::EngineState::Paused) {
        std::cout << "target halted on overshoot (engine "
                  << core::to_string(session.engine().state()) << "); resuming...\n";
        session.resume();
        target.run_for(5 * rt::kSec);
        std::cout << "settled speed: " << vehicle_speed << "\n";
    }

    std::cout << "\n=== timing diagram ===\n";
    std::cout << session.timing_diagram().render_ascii(64) << "\n";

    std::ofstream vcd_file("cruise_trace.vcd");
    vcd_file << session.vcd();
    std::cout << "trace exported to cruise_trace.vcd ("
              << session.trace().size() << " events)\n";
    return 0;
}
