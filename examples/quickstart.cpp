// Quickstart: the whole GMDF workflow on a blinker state machine.
//
//   model -> validate -> abstraction (GDM) -> code generation ->
//   simulated target -> active debugging -> animation + trace replay.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "codegen/loader.hpp"
#include "comdes/build.hpp"
#include "comdes/validate.hpp"
#include "core/builder.hpp"

using namespace gmdf;

int main() {
    // 1. Model a blinker: a state machine toggling a LED signal every scan.
    comdes::SystemBuilder sys("blinker_system");
    auto led = sys.add_signal("led", "bool_");
    auto actor = sys.add_actor("blinker", /*period_us=*/100'000); // 10 Hz
    auto sm = actor.add_sm("toggler", {"tick"}, {"out"});
    auto off = sm.add_state("off", {{"out", "0"}});
    auto on = sm.add_state("on", {{"out", "1"}});
    sm.add_transition(off, on, "tick");
    sm.add_transition(on, off, "tick");
    auto one = actor.add_basic("one", "const_", {1.0});
    actor.connect(one, "out", sm.sm_id(), "tick");
    actor.bind_output(sm.sm_id(), "out", led);

    // 2. Validate the design model.
    auto diagnostics = comdes::validate_comdes(sys.model());
    if (!meta::is_clean(diagnostics)) {
        for (const auto& d : diagnostics) std::cerr << d.to_string() << "\n";
        return 1;
    }
    std::cout << "model validates: " << sys.model().size() << " elements\n";

    // 3. Generate + load the executable code (active command interface).
    rt::Target target;
    auto loaded = codegen::load_system(target, sys.model(),
                                       codegen::InstrumentOptions::active());

    // 4. The debug session abstracts the model into a GDM automatically;
    //    SessionBuilder assembles model -> mapping -> bindings -> transport.
    auto session = core::SessionBuilder(sys.model())
                       .bindings(core::CommandBindingTable::defaults())
                       .active_uart(target)
                       .build();
    std::cout << "GDM generated: " << session->abstraction().mapped_nodes << " nodes, "
              << session->abstraction().mapped_edges << " edges\n";
    std::cout << "transport: " << session->transports().front()->name() << "\n\n";

    // 5. Run for one second of simulated time and animate.
    target.start();
    target.run_for(1050 * rt::kMs);

    std::cout << "=== final animation frame (state '"
              << (session->engine().current_state(sm.sm_id())
                      ? sys.model().at(*session->engine().current_state(sm.sm_id())).name()
                      : "?")
              << "' highlighted) ===\n";
    std::cout << session->render_ascii() << "\n";

    // 6. Trace products: timing diagram + replay.
    std::cout << "=== timing diagram ===\n";
    std::cout << session->timing_diagram().render_ascii(64) << "\n";

    auto frames = session->replay_frames(/*stride=*/8);
    std::cout << "replay produced " << frames.size() << " frames, deterministic re-animation\n";
    std::cout << "commands observed: " << session->engine().stats().commands
              << ", reactions: " << session->engine().stats().reactions
              << ", divergences: " << session->divergences().size() << "\n";
    std::cout << "same workflow, scripted: ./build/gmdf_dbg --script examples/quickstart.gds\n";
    (void)led;
    (void)loaded;
    return 0;
}
