// gmdf_serve — the GMDF debug hub behind a TCP listener.
//
// Hosts the same hub gmdf_dbg drives over stdin, but serves it to N
// concurrent network clients through net::Server: gmdf_dbg --connect
// host:port (frame codec, byte-identical transcripts) or plain
// netcat/telnet (line codec). Clients share one fleet: they can open
// their own sessions, attach to existing ones, and scope themselves
// with the acl verb; `session stats net` reports server and
// per-connection counters.
//
//   ./gmdf_serve                         # blinker on an ephemeral port
//   ./gmdf_serve --model turntable --port 7421
//   ./gmdf_dbg --connect 127.0.0.1:7421 --script examples/quickstart.gds
//
// Prints "listening <host>:<port>" once the socket is bound (scripts
// wait for that line, then parse the port). SIGINT/SIGTERM drain and
// exit 0.
#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "hub/controller.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/scenarios.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(std::ostream& out, int code) {
    out << "usage: gmdf_serve [--model <name>] [--host <addr>] [--port <n>] "
           "[--max-conn <n>] [--threads <n>]\n"
           "                  [--idle-timeout-ms <n>] [--accept-high-water <n>] "
           "[--watchdog-us <n>] [--watchdog-strikes <n>]\n"
           "                  [--metrics-interval-ms <n>] [--trace-out <file>]\n\n"
        << "Serves a GMDF debug hub over TCP (frame or line codec).\n"
        << "  --model <name>    built-in scenario of the seed session:";
    for (const std::string& name : gmdf::proto::scenario_names()) out << " " << name;
    out << " (default blinker)\n"
        << "  --host <addr>     bind address (default 127.0.0.1)\n"
        << "  --port <n>        TCP port; 0 picks an ephemeral one (default 0)\n"
        << "  --max-conn <n>    concurrent connection cap (default 10000)\n"
        << "  --threads <n>     fleet pump worker threads; per-session behavior\n"
        << "                    is identical at any count (default 1)\n"
        << "  --idle-timeout-ms <n>   close connections silent this long; frame\n"
        << "                    clients stay alive with heartbeat pings (default off)\n"
        << "  --accept-high-water <n> shed new clients with a structured busy\n"
        << "                    reply above this many connections (default off)\n"
        << "  --watchdog-us <n> per-slice wall-clock pump deadline; a session\n"
        << "                    over it repeatedly is quarantined (default off)\n"
        << "  --watchdog-strikes <n>  consecutive overruns before quarantine\n"
        << "                    (default 3)\n"
        << "  --metrics-interval-ms <n>  dump the obs metrics registry to stderr\n"
        << "                    every <n> ms (default off; scrape GET /metrics on\n"
        << "                    the same port for Prometheus exposition)\n"
        << "  --trace-out <file>  record obs spans (dispatch, pump slices per\n"
        << "                    shard, checkpoints) for the whole run; written as\n"
        << "                    Chrome trace-event JSON (Perfetto) on exit\n"
        << "  --help            this text\n";
    return code;
}

} // namespace

int main(int argc, char** argv) {
    // The server's poll loop writes to sockets that can vanish between
    // poll() and send(); MSG_NOSIGNAL covers those sends, and ignoring
    // SIGPIPE covers everything else (a late flush on a dead fd must
    // surface as EPIPE, never kill the hub).
    std::signal(SIGPIPE, SIG_IGN);

    std::string model = "blinker";
    int threads = 1;
    int metrics_interval_ms = 0;
    std::string trace_out;
    gmdf::hub::WatchdogConfig watchdog;
    gmdf::net::ServerConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
        if (arg == "--model" && i + 1 < argc) {
            model = argv[++i];
        } else if (arg == "--host" && i + 1 < argc) {
            config.host = argv[++i];
        } else if (arg == "--port" && i + 1 < argc) {
            config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (arg == "--max-conn" && i + 1 < argc) {
            config.max_connections = std::atoi(argv[++i]);
        } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
            config.idle_timeout_ms = std::atoi(argv[++i]);
        } else if (arg == "--accept-high-water" && i + 1 < argc) {
            config.accept_high_water = std::atoi(argv[++i]);
        } else if (arg == "--watchdog-us" && i + 1 < argc) {
            watchdog.slice_limit_us = std::atoll(argv[++i]);
        } else if (arg == "--watchdog-strikes" && i + 1 < argc) {
            watchdog.max_strikes = std::atoi(argv[++i]);
        } else if (arg == "--metrics-interval-ms" && i + 1 < argc) {
            metrics_interval_ms = std::atoi(argv[++i]);
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
            if (threads < 1) {
                std::cerr << "gmdf_serve: --threads must be >= 1\n";
                return usage(std::cerr, 2);
            }
        } else {
            std::cerr << "gmdf_serve: unknown argument '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
    }

    gmdf::hub::HubController hub;
    hub.scheduler().set_threads(threads);
    if (watchdog.slice_limit_us > 0) hub.scheduler().set_watchdog(watchdog);
    auto* seed = hub.open(model, model);
    if (seed == nullptr) {
        std::cerr << "gmdf_serve: no scenario '" << model << "'\n";
        return usage(std::cerr, 2);
    }

    gmdf::net::Server server(hub, config);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "gmdf_serve: " << error << "\n";
        return 1;
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (!trace_out.empty()) {
        gmdf::obs::tracer().start();
        gmdf::obs::tracer().set_thread_name(gmdf::obs::current_trace_tid(), "hub");
    }

    std::cout << "listening " << config.host << ":" << server.port()
              << " (scenario '" << seed->name << "' hosted as session "
              << seed->id << ")" << std::endl;

    if (metrics_interval_ms > 0) {
        // Same serve loop as run(), plus a periodic registry dump to
        // stderr — the no-network-tooling way to watch a long-running hub.
        using clock = std::chrono::steady_clock;
        const auto interval = std::chrono::milliseconds(metrics_interval_ms);
        auto next_dump = clock::now() + interval;
        while (!g_stop.load(std::memory_order_relaxed)) {
            server.poll_once(20);
            const auto now = clock::now();
            if (now >= next_dump) {
                std::cerr << "== metrics ==\n";
                for (const std::string& line : gmdf::obs::registry().text_dump())
                    std::cerr << line << "\n";
                std::cerr.flush();
                do next_dump += interval; while (next_dump <= now);
            }
        }
    } else {
        server.run(g_stop);
    }

    if (!trace_out.empty()) {
        gmdf::obs::tracer().stop();
        std::ofstream trace_file(trace_out, std::ios::binary);
        if (!trace_file) {
            std::cerr << "gmdf_serve: cannot write trace to '" << trace_out << "'\n";
        } else {
            gmdf::obs::tracer().write_chrome_json(trace_file);
            std::cout << "gmdf_serve: wrote trace " << trace_out << " ("
                      << gmdf::obs::tracer().event_count() << " spans)\n";
        }
    }

    const auto& stats = server.stats();
    std::cout << "gmdf_serve: drained (" << stats.accepted << " connections, "
              << stats.requests << " requests, " << stats.bytes_in << " bytes in, "
              << stats.bytes_out << " bytes out)\n";
    server.stop();
    return 0;
}
