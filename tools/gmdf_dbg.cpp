// gmdf_dbg — the scriptable debugger driver.
//
// Serves the GMDF protocol over stdin/stdout from a multi-session debug
// hub seeded with one built-in demo scenario: an interactive REPL by
// default, or batch execution of a scenario script (one request per
// line) with --script. More sessions can be opened at runtime
// (`session open <scenario> [name]`) and addressed per request
// (`@<session> <verb ...>`); with a single session every transcript is
// byte-identical to the pre-hub driver. Script mode echoes every
// command into the transcript, so a run is a byte-stable text fixture.
//
// With --connect the same driver becomes a network client: requests go
// to a gmdf_serve instance over the frame codec (net::Channel) through
// the identical proto::ScriptClient seam, so scripts and transcripts
// are byte-for-byte the same in-process and over TCP.
//
//   ./gmdf_dbg                                  # REPL on the blinker
//   ./gmdf_dbg --model turntable                # REPL on the turntable
//   ./gmdf_dbg --script examples/quickstart.gds # scripted scenario
//   ./gmdf_dbg --script examples/fleet.gds      # two targets, one hub
//   ./gmdf_dbg --connect 127.0.0.1:7421 --script examples/quickstart.gds
//
// Exit status: 0 when every request succeeded, 1 on any error response,
// 2 on bad usage or connect failure.
#include <fstream>
#include <iostream>
#include <string>

#include "hub/controller.hpp"
#include "net/client.hpp"
#include "proto/scenarios.hpp"
#include "proto/script.hpp"

namespace {

int usage(std::ostream& out, int code) {
    out << "usage: gmdf_dbg [--model <name>] [--script <file>] "
           "[--connect <host:port>]\n\n"
        << "Drives a GMDF debug hub over the text protocol.\n"
        << "  --model <name>        built-in scenario of the initial session:";
    for (const std::string& name : gmdf::proto::scenario_names()) out << " " << name;
    out << " (default blinker)\n"
        << "  --script <file>       run the script instead of an interactive REPL\n"
        << "  --connect <host:port> drive a gmdf_serve hub instead of an "
           "in-process one\n"
        << "  --help                this text\n";
    return code;
}

/// Line-numbered accounts of everything that went wrong, to stderr so
/// transcripts on stdout stay byte-stable.
void report_diagnostics(const std::string& script_path,
                        const gmdf::proto::ScriptResult& result) {
    for (const auto& d : result.diagnostics) {
        std::cerr << "gmdf_dbg: " << script_path << ":" << d.line << ": " << d.message
                  << "\n";
        if (!d.text.empty()) std::cerr << "    > " << d.text << "\n";
    }
}

int run(gmdf::proto::ScriptClient& client, const std::string& script_path,
        const std::string& greeting) {
    if (!script_path.empty()) {
        std::ifstream script(script_path);
        if (!script) {
            std::cerr << "gmdf_dbg: cannot open script '" << script_path << "'\n";
            return 2;
        }
        auto result = gmdf::proto::run_script(client, script, std::cout,
                                              {/*echo=*/true, /*prompt=*/""});
        report_diagnostics(script_path, result);
        return result.errors == 0 && !result.failed ? 0 : 1;
    }
    std::cout << greeting;
    auto result = gmdf::proto::run_script(client, std::cin, std::cout,
                                          {/*echo=*/false, /*prompt=*/"gmdf> "});
    if (!result.quit) std::cout << "\n";
    return result.errors == 0 && !result.failed ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string model = "blinker";
    std::string script_path;
    std::string connect_spec;
    bool model_given = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
        if (arg == "--model" && i + 1 < argc) {
            model = argv[++i];
            model_given = true;
        } else if (arg == "--script" && i + 1 < argc) {
            script_path = argv[++i];
        } else if (arg == "--connect" && i + 1 < argc) {
            connect_spec = argv[++i];
        } else {
            std::cerr << "gmdf_dbg: unknown argument '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (!connect_spec.empty()) {
        if (model_given) {
            std::cerr << "gmdf_dbg: --model picks the *server's* seed scenario; "
                         "it cannot be combined with --connect\n";
            return usage(std::cerr, 2);
        }
        std::string host;
        std::uint16_t port = 0;
        if (!gmdf::net::split_host_port(connect_spec, host, port)) {
            std::cerr << "gmdf_dbg: bad --connect '" << connect_spec
                      << "' (expected host:port)\n";
            return usage(std::cerr, 2);
        }
        std::string error;
        auto channel = gmdf::net::Channel::connect(host, port, &error);
        if (channel == nullptr) {
            std::cerr << "gmdf_dbg: " << error << "\n";
            return 2;
        }
        // A dropped server connection redials with backoff and re-attaches
        // the current session instead of failing the rest of the script.
        gmdf::net::Channel::ReconnectConfig rc;
        rc.max_attempts = 5;
        rc.base_delay_ms = 50;
        rc.max_delay_ms = 1000;
        channel->set_reconnect(rc);
        return run(*channel, script_path,
                   "gmdf_dbg: connected to " + connect_spec +
                       " ('help' lists verbs)\n");
    }

    gmdf::hub::HubController hub;
    auto* seed = hub.open(model, model);
    if (seed == nullptr) {
        std::cerr << "gmdf_dbg: no scenario '" << model << "'\n";
        return usage(std::cerr, 2);
    }
    return run(hub, script_path,
               "gmdf_dbg: scenario '" + seed->name +
                   "' hosted as session 1 over the active command interface "
                   "('help' lists verbs)\n");
}
