// gmdf_campaign — automated fault-hunt campaigns from the command line.
//
//   gmdf_campaign [--pairs N] [--seed S] [--wave W] [--threads N|-j N]
//                 [--json] [--verbose]
//   gmdf_campaign --chaos [--pairs N] [--seed S] [--fault-rate F]
//                 [--rounds N] [--verbose]
//
// Default mode generates N seeded (model, injected-fault) pairs, runs
// each as twin fleet sessions with a differential check, localizes
// every detected divergence (replay bisect, twin-trace diff fallback),
// and prints the per-fault-kind report. Exit status 0 iff every pair
// classified (localized / clean / skipped) — CI's campaign gate.
//
// --chaos turns the campaign on the debug service itself: a live hub +
// TCP server behind a seeded fault-injecting proxy, N reconnecting
// clients (--pairs) driving .gds workloads at --fault-rate (a fraction;
// 0.1 faults 10% of forwarded chunks). Exit status 0 iff the hub
// survives and every client classifies — CI's chaos gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/chaos.hpp"
#include "campaign/runner.hpp"

namespace {

void print_json(const gmdf::campaign::CampaignReport& report) {
    std::printf("{\n  \"pairs\": %zu,\n  \"seed\": %u,\n", report.pairs.size(),
                report.config.seed);
    std::printf("  \"localized\": %d,\n  \"clean\": %d,\n  \"skipped\": %d,\n",
                report.localized, report.clean, report.skipped);
    std::printf("  \"unclassified\": %d,\n  \"by_kind\": {\n", report.unclassified());
    const auto kinds = gmdf::codegen::all_fault_kinds();
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        auto it = report.by_kind.find(kinds[i]);
        const gmdf::campaign::KindTally k =
            it == report.by_kind.end() ? gmdf::campaign::KindTally{} : it->second;
        std::printf("    \"%s\": {\"pairs\": %d, \"localized\": %d, \"bisect\": %d, "
                    "\"differential\": %d, \"clean\": %d, \"skipped\": %d}%s\n",
                    gmdf::codegen::to_string(kinds[i]), k.pairs, k.localized, k.bisect,
                    k.differential, k.clean, k.skipped,
                    i + 1 < kinds.size() ? "," : "");
    }
    std::printf("  }\n}\n");
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--pairs N] [--seed S] [--wave W] [--threads N|-j N] "
                 "[--json] [--verbose]\n"
                 "       %s --chaos [--pairs N] [--seed S] [--fault-rate F] "
                 "[--rounds N] [--verbose]\n",
                 argv0, argv0);
    return 2;
}

int run_chaos(const gmdf::campaign::ChaosCampaignConfig& cfg, bool verbose) {
    const gmdf::campaign::ChaosReport report = gmdf::campaign::run_chaos_campaign(cfg);
    if (verbose) {
        for (const auto& c : report.clients)
            std::printf("client %d %s: %llu requests %llu errors %llu reconnects%s%s\n",
                        c.index, gmdf::campaign::to_string(c.outcome),
                        static_cast<unsigned long long>(c.requests),
                        static_cast<unsigned long long>(c.errors),
                        static_cast<unsigned long long>(c.reconnects),
                        c.detail.empty() ? "" : " — ", c.detail.c_str());
    }
    for (const std::string& line : report.summary_lines())
        std::printf("%s\n", line.c_str());
    return report.passed() ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    gmdf::campaign::CampaignConfig cfg;
    gmdf::campaign::ChaosCampaignConfig chaos_cfg;
    bool chaos = false;
    bool json = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_int = [&](long min_v) -> long {
            if (i + 1 >= argc) return min_v - 1;
            char* end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            return (end == nullptr || *end != '\0') ? min_v - 1 : v;
        };
        if (arg == "--chaos") {
            chaos = true;
        } else if (arg == "--fault-rate") {
            if (i + 1 >= argc) return usage(argv[0]);
            char* end = nullptr;
            double v = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0)
                return usage(argv[0]);
            chaos_cfg.fault_rate = v;
        } else if (arg == "--rounds") {
            long v = next_int(1);
            if (v < 1) return usage(argv[0]);
            chaos_cfg.rounds = static_cast<int>(v);
        } else if (arg == "--pairs") {
            long v = next_int(1);
            if (v < 1) return usage(argv[0]);
            cfg.pairs = static_cast<int>(v);
            chaos_cfg.clients = static_cast<int>(v);
        } else if (arg == "--seed") {
            long v = next_int(0);
            if (v < 0) return usage(argv[0]);
            cfg.seed = static_cast<std::uint32_t>(v);
            chaos_cfg.seed = static_cast<std::uint32_t>(v);
        } else if (arg == "--wave") {
            long v = next_int(1);
            if (v < 1) return usage(argv[0]);
            cfg.wave = static_cast<int>(v);
        } else if (arg == "--threads" || arg == "-j") {
            long v = next_int(1);
            if (v < 1) return usage(argv[0]);
            cfg.threads = static_cast<int>(v);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (chaos) return run_chaos(chaos_cfg, verbose);

    const gmdf::campaign::CampaignReport report = gmdf::campaign::run_campaign(cfg);

    if (verbose) {
        for (const auto& p : report.pairs)
            std::printf("pair %d seed %u %s: %s%s%s %s\n", p.index, p.model_seed,
                        gmdf::codegen::to_string(p.kind),
                        gmdf::campaign::to_string(p.outcome),
                        p.outcome == gmdf::campaign::Outcome::Localized ? " via " : "",
                        p.outcome == gmdf::campaign::Outcome::Localized
                            ? gmdf::campaign::to_string(p.method)
                            : "",
                        p.detail.c_str());
    }
    if (json) {
        print_json(report);
    } else {
        for (const std::string& line : report.summary_lines())
            std::printf("%s\n", line.c_str());
    }
    return report.unclassified() == 0 ? 0 : 1;
}
